#include "obs/health.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mh::obs {

namespace {

bool is_per_rank(AlertRule::Kind kind) {
  switch (kind) {
    case AlertRule::Kind::kStraggler:
    case AlertRule::Kind::kRankDead:
    case AlertRule::Kind::kSendRetryStorm:
    case AlertRule::Kind::kBreakerOpen:
    case AlertRule::Kind::kSloBurn:
      return true;
    case AlertRule::Kind::kReplicationLow:
    case AlertRule::Kind::kStealThrash:
      return false;
  }
  return false;
}

// Span names and arg keys must be string literals (Span does not own
// them), so alert spans are named by rule kind, not by the configurable
// rule name.
const char* alert_span_name(AlertRule::Kind kind) {
  switch (kind) {
    case AlertRule::Kind::kStraggler: return "alert:straggler";
    case AlertRule::Kind::kRankDead: return "alert:rank_dead";
    case AlertRule::Kind::kSendRetryStorm: return "alert:send_retry_storm";
    case AlertRule::Kind::kReplicationLow: return "alert:replication_low";
    case AlertRule::Kind::kBreakerOpen: return "alert:breaker_open";
    case AlertRule::Kind::kStealThrash: return "alert:steal_thrash";
    case AlertRule::Kind::kSloBurn: return "alert:slo_burn";
  }
  return "alert";
}

const char* kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "counter";
}

double rank_as_number(std::size_t rank) {
  return rank == kClusterRank ? -1.0 : static_cast<double>(rank);
}

}  // namespace

std::vector<AlertRule> default_rules(double replication) {
  return {
      {AlertRule::Kind::kStraggler, "straggler", "mh_rank_queue_depth", "",
       4.0, 2, 2},
      {AlertRule::Kind::kRankDead, "rank_dead", "mh_rank_alive", "", 0.5, 1,
       1},
      {AlertRule::Kind::kSendRetryStorm, "send_retry_storm",
       "mh_rank_send_retries", "", 3.0, 1, 2},
      {AlertRule::Kind::kReplicationLow, "replication_low",
       "mh_replication_min_copies", "", replication, 1, 1},
      {AlertRule::Kind::kBreakerOpen, "breaker_open", "mh_fault_breaker_state",
       "", 0.75, 1, 2},
      {AlertRule::Kind::kStealThrash, "steal_thrash", "mh_steal_denials",
       "mh_steal_requests", 0.8, 2, 2},
  };
}

std::string_view alert_state_name(AlertState state) noexcept {
  switch (state) {
    case AlertState::kInactive: return "inactive";
    case AlertState::kPending: return "pending";
    case AlertState::kFiring: return "firing";
    case AlertState::kResolved: return "resolved";
  }
  return "inactive";
}

HealthMonitor::HealthMonitor(Config config)
    : rules_(config.rules.empty() ? default_rules() : std::move(config.rules)),
      registry_(config.registry),
      trace_(config.trace),
      history_capacity_(std::max<std::size_t>(config.history_capacity, 8)) {}

bool HealthMonitor::condition(const AlertRule& rule,
                              const TelemetryAggregator& agg, std::size_t rank,
                              double* value, double* threshold) {
  *threshold = rule.threshold;
  *value = 0.0;
  switch (rule.kind) {
    case AlertRule::Kind::kStraggler: {
      const TelemetryAggregator::Instrument* inst = agg.find(rule.instrument);
      if (inst == nullptr || rank >= inst->seen.size() || !inst->seen[rank]) {
        return false;
      }
      const auto stats = agg.gauge_stats(rule.instrument);
      *value = inst->lanes[rank];
      // Depth relative to the cluster median; the max(median, 1) floor
      // keeps a fully drained cluster from flagging the last worker.
      return *value >= rule.threshold * std::max(stats.median, 1.0);
    }
    case AlertRule::Kind::kRankDead: {
      const TelemetryAggregator::Instrument* inst = agg.find(rule.instrument);
      if (inst == nullptr || rank >= inst->seen.size() || !inst->seen[rank]) {
        return false;
      }
      *value = inst->lanes[rank];
      return *value < rule.threshold;
    }
    case AlertRule::Kind::kSendRetryStorm: {
      const TelemetryAggregator::Instrument* inst = agg.find(rule.instrument);
      if (inst == nullptr || rank >= inst->seen.size() || !inst->seen[rank]) {
        return false;
      }
      const auto it = prev_lanes_.find(rule.name);
      const double prev = it != prev_lanes_.end() && rank < it->second.size()
                              ? it->second[rank]
                              : 0.0;
      *value = inst->lanes[rank] - prev;  // retries this tick
      return *value >= rule.threshold;
    }
    case AlertRule::Kind::kReplicationLow: {
      const auto stats = agg.gauge_stats(rule.instrument);
      if (stats.lanes == 0) return false;
      *value = stats.min;
      return *value < rule.threshold;
    }
    case AlertRule::Kind::kBreakerOpen:
    case AlertRule::Kind::kSloBurn: {
      // Same shape: a per-rank (per-tenant, for SLO burn) gauge lane at or
      // above the threshold.
      const TelemetryAggregator::Instrument* inst = agg.find(rule.instrument);
      if (inst == nullptr || rank >= inst->seen.size() || !inst->seen[rank]) {
        return false;
      }
      *value = inst->lanes[rank];
      return *value >= rule.threshold;
    }
    case AlertRule::Kind::kStealThrash: {
      const auto it = prev_lanes_.find(rule.name);
      const double prev_denied =
          it != prev_lanes_.end() && !it->second.empty() ? it->second[0] : 0.0;
      const double prev_requested =
          it != prev_lanes_.end() && it->second.size() > 1 ? it->second[1]
                                                           : 0.0;
      const double denied = agg.counter_total(rule.instrument) - prev_denied;
      const double requested =
          agg.counter_total(rule.instrument_b) - prev_requested;
      if (requested < kStealThrashMinRequests) return false;
      *value = denied / requested;
      return *value >= rule.threshold;
    }
  }
  return false;
}

std::vector<AlertEvent> HealthMonitor::evaluate(const TelemetryAggregator& agg,
                                                double time_s) {
  ++ticks_;
  std::vector<AlertEvent> out;
  const auto emit = [&](const AlertRule& rule, AlertState state,
                        std::size_t rank, const Cell& cell) {
    AlertEvent ev;
    ev.rule = rule.name;
    ev.state = state;
    ev.rank = rank;
    ev.value = cell.value;
    ev.threshold = rule.threshold;
    ev.time_s = time_s;
    ev.tick = ticks_;
    out.push_back(ev);
    if (history_.size() >= history_capacity_) {
      history_.erase(history_.begin());
      ++events_dropped_;
    }
    history_.push_back(out.back());
    if (registry_ != nullptr) {
      registry_
          ->counter(state == AlertState::kFiring ? "mh_alert_fired_total"
                                                 : "mh_alert_resolved_total",
                    "health-plane alert transitions", {{"rule", rule.name}})
          .inc();
    }
  };

  for (std::size_t ri = 0; ri < rules_.size(); ++ri) {
    const AlertRule& rule = rules_[ri];
    const std::size_t nranks = is_per_rank(rule.kind) ? agg.ranks() : 0;
    for (std::size_t i = 0; i <= nranks; ++i) {
      // Per-rank rules scan every rank; cluster rules run one cell.
      const std::size_t rank = is_per_rank(rule.kind)
                                   ? (i < nranks ? i : kClusterRank)
                                   : kClusterRank;
      if (is_per_rank(rule.kind) && rank == kClusterRank) continue;
      double value = 0.0;
      double threshold = rule.threshold;
      const bool cond = condition(rule, agg, rank, &value, &threshold);
      Cell& cell = cells_[{ri, rank}];
      cell.value = value;
      if (cond) {
        if (cell.true_ticks == 0) cell.since_s = time_s;
        ++cell.true_ticks;
        cell.false_ticks = 0;
        if (!cell.firing &&
            cell.true_ticks >= std::max<std::size_t>(rule.for_ticks, 1)) {
          cell.firing = true;
          cell.fired_s = time_s;
          emit(rule, AlertState::kFiring, rank, cell);
        }
      } else {
        cell.true_ticks = 0;
        if (cell.firing) {
          ++cell.false_ticks;
          if (cell.false_ticks >=
              std::max<std::size_t>(rule.resolve_ticks, 1)) {
            cell.firing = false;
            cell.false_ticks = 0;
            emit(rule, AlertState::kResolved, rank, cell);
            if (trace_ != nullptr) {
              if (alert_track_ == 0) {
                alert_track_ = trace_->track(ClockDomain::kSim,
                                             "health/alerts");
              }
              trace_->record_sim(alert_track_, alert_span_name(rule.kind),
                                 Category::kOther,
                                 SimTime::seconds(cell.fired_s),
                                 SimTime::seconds(time_s),
                                 {{"rank", rank_as_number(rank)},
                                  {"value", value}});
            }
          }
        }
      }
    }
    // Rate rules diff against the previous tick: refresh the baseline
    // after the whole rank scan so every cell saw the same window.
    if (rule.kind == AlertRule::Kind::kSendRetryStorm) {
      const TelemetryAggregator::Instrument* inst = agg.find(rule.instrument);
      if (inst != nullptr) prev_lanes_[rule.name] = inst->lanes;
    } else if (rule.kind == AlertRule::Kind::kStealThrash) {
      prev_lanes_[rule.name] = {agg.counter_total(rule.instrument),
                                agg.counter_total(rule.instrument_b)};
    }
  }

  if (registry_ != nullptr) {
    double firing = 0.0;
    for (const auto& [key, cell] : cells_) {
      if (cell.firing) firing += 1.0;
    }
    registry_->gauge("mh_alert_active", "alert cells currently firing")
        .set(firing);
  }
  return out;
}

std::vector<HealthMonitor::ActiveAlert> HealthMonitor::active() const {
  std::vector<ActiveAlert> out;
  for (const auto& [key, cell] : cells_) {
    if (!cell.firing && cell.true_ticks == 0) continue;
    ActiveAlert a;
    a.rule = rules_[key.first].name;
    a.rank = key.second;
    a.state = cell.firing ? AlertState::kFiring : AlertState::kPending;
    a.value = cell.value;
    a.threshold = rules_[key.first].threshold;
    a.since_s = cell.since_s;
    out.push_back(std::move(a));
  }
  return out;
}

HealthPlane::HealthPlane(Config config)
    : config_(std::move(config)),
      aggregator_(TelemetryAggregator::Config{config_.ranks,
                                              config_.ring_capacity}),
      monitor_(HealthMonitor::Config{
          config_.rules, config_.registry, config_.trace, 256}) {}

HealthPlane::~HealthPlane() {
  if (!config_.dashboard_path.empty() && monitor_.ticks() > 0) {
    write_dashboard(config_.dashboard_path);
  }
}

void HealthPlane::ingest(const TelemetryDelta& delta) {
  std::scoped_lock lock(mu_);
  aggregator_.ingest(delta);
}

std::vector<AlertEvent> HealthPlane::evaluate(double time_s) {
  std::scoped_lock lock(mu_);
  aggregator_.commit(time_s);
  auto events = monitor_.evaluate(aggregator_, time_s);
  if (!config_.dashboard_path.empty() &&
      ++ticks_since_write_ >= std::max<std::size_t>(config_.dashboard_every,
                                                    1)) {
    ticks_since_write_ = 0;
    std::ofstream os(config_.dashboard_path);
    if (os) write_dashboard_locked(os);
  }
  return events;
}

std::vector<AlertEvent> HealthPlane::tick(
    const std::vector<TelemetryDelta>& deltas, double time_s) {
  for (const TelemetryDelta& d : deltas) ingest(d);
  return evaluate(time_s);
}

std::vector<AlertEvent> HealthPlane::alert_history() const {
  std::scoped_lock lock(mu_);
  return monitor_.history();
}

std::vector<HealthMonitor::ActiveAlert> HealthPlane::active_alerts() const {
  std::scoped_lock lock(mu_);
  return monitor_.active();
}

std::uint64_t HealthPlane::ticks() const {
  std::scoped_lock lock(mu_);
  return monitor_.ticks();
}

double HealthPlane::counter_total(std::string_view name) const {
  std::scoped_lock lock(mu_);
  return aggregator_.counter_total(name);
}

double HealthPlane::lane(std::string_view name, std::size_t rank,
                         double fallback) const {
  std::scoped_lock lock(mu_);
  return aggregator_.lane(name, rank, fallback);
}

TelemetryAggregator::GaugeStats HealthPlane::gauge_stats(
    std::string_view name) const {
  std::scoped_lock lock(mu_);
  return aggregator_.gauge_stats(name);
}

std::uint64_t HealthPlane::deltas_ingested() const {
  std::scoped_lock lock(mu_);
  return aggregator_.deltas_ingested();
}

double HealthPlane::bytes_ingested() const {
  std::scoped_lock lock(mu_);
  return aggregator_.bytes_ingested();
}

std::uint64_t HealthPlane::snapshots_lost() const {
  std::scoped_lock lock(mu_);
  return aggregator_.snapshots_lost();
}

void HealthPlane::write_dashboard_locked(std::ostream& os) const {
  os << "{\n  \"schema\": \"mh_dashboard_v1\",\n";
  os << "  \"time_s\": " << aggregator_.last_time_s() << ",\n";
  os << "  \"ticks\": " << monitor_.ticks() << ",\n";
  os << "  \"ranks\": " << aggregator_.ranks() << ",\n";
  os << "  \"ring_capacity\": " << aggregator_.config().ring_capacity
     << ",\n";
  os << "  \"deltas_ingested\": " << aggregator_.deltas_ingested() << ",\n";
  os << "  \"updates_ingested\": " << aggregator_.updates_ingested() << ",\n";
  os << "  \"bytes_ingested\": " << aggregator_.bytes_ingested() << ",\n";
  os << "  \"snapshots_lost\": " << aggregator_.snapshots_lost() << ",\n";

  os << "  \"alerts\": {\n    \"active\": [";
  bool first = true;
  for (const auto& a : monitor_.active()) {
    os << (first ? "" : ", ") << "{\"rule\": ";
    json::write_escaped(os, a.rule);
    os << ", \"rank\": " << rank_as_number(a.rank) << ", \"state\": ";
    json::write_escaped(os, alert_state_name(a.state));
    os << ", \"value\": " << a.value << ", \"threshold\": " << a.threshold
       << ", \"since_s\": " << a.since_s << "}";
    first = false;
  }
  os << "],\n    \"history\": [";
  first = true;
  for (const AlertEvent& ev : monitor_.history()) {
    os << (first ? "" : ", ") << "{\"rule\": ";
    json::write_escaped(os, ev.rule);
    os << ", \"state\": ";
    json::write_escaped(os, alert_state_name(ev.state));
    os << ", \"rank\": " << rank_as_number(ev.rank)
       << ", \"value\": " << ev.value << ", \"threshold\": " << ev.threshold
       << ", \"time_s\": " << ev.time_s << ", \"tick\": " << ev.tick << "}";
    first = false;
  }
  os << "],\n    \"dropped\": " << monitor_.events_dropped() << "\n  },\n";

  os << "  \"instruments\": [";
  first = true;
  for (const TelemetryAggregator::Instrument* inst :
       aggregator_.instruments()) {
    os << (first ? "\n    " : ",\n    ") << "{\"name\": ";
    json::write_escaped(os, inst->name);
    os << ", \"kind\": ";
    json::write_escaped(os, kind_name(inst->kind));
    if (!inst->labels.empty()) {
      os << ", \"labels\": {";
      bool lfirst = true;
      for (const auto& [k, v] : inst->labels) {
        os << (lfirst ? "" : ", ");
        json::write_escaped(os, k);
        os << ": ";
        json::write_escaped(os, v);
        lfirst = false;
      }
      os << "}";
    }
    switch (inst->kind) {
      case MetricKind::kCounter: {
        os << ", \"total\": " << inst->total << ", \"lanes\": [";
        for (std::size_t r = 0; r < inst->lanes.size(); ++r) {
          os << (r == 0 ? "" : ", ");
          if (inst->seen[r]) {
            os << inst->lanes[r];
          } else {
            os << "null";
          }
        }
        os << "]";
        break;
      }
      case MetricKind::kGauge: {
        os << ", \"lanes\": [";
        for (std::size_t r = 0; r < inst->lanes.size(); ++r) {
          os << (r == 0 ? "" : ", ");
          if (inst->seen[r]) {
            os << inst->lanes[r];
          } else {
            os << "null";
          }
        }
        os << "]";
        const auto stats = aggregator_.gauge_stats(inst->name);
        os << ", \"min\": " << stats.min << ", \"median\": " << stats.median
           << ", \"max\": " << stats.max;
        break;
      }
      case MetricKind::kHistogram: {
        const HistogramSnapshot merged = inst->merged();
        os << ", \"hist\": {\"count\": " << merged.count
           << ", \"sum\": " << merged.sum << ", \"min\": " << merged.min
           << ", \"max\": " << merged.max
           << ", \"p50\": " << merged.quantile(0.5)
           << ", \"p999\": " << merged.p999() << "}";
        break;
      }
    }
    os << ", \"ring\": [";
    bool rfirst = true;
    for (const auto& point : inst->ring) {
      os << (rfirst ? "" : ", ") << "[" << point.time_s << ", " << point.value
         << "]";
      rfirst = false;
    }
    os << "], \"ring_evicted\": " << inst->ring_evicted << "}";
    first = false;
  }
  os << "\n  ]\n}\n";
}

std::string HealthPlane::dashboard_json() const {
  std::scoped_lock lock(mu_);
  std::ostringstream os;
  write_dashboard_locked(os);
  return os.str();
}

bool HealthPlane::write_dashboard(const std::string& path) const {
  std::scoped_lock lock(mu_);
  std::ofstream os(path);
  if (!os) return false;
  write_dashboard_locked(os);
  return static_cast<bool>(os);
}

std::string dashboard_path_from_env() {
  const char* path = std::getenv("MH_DASHBOARD");
  return path != nullptr ? std::string(path) : std::string();
}

bool telemetry_enabled_from_env() {
  const char* v = std::getenv("MH_TELEMETRY");
  if (v == nullptr) return false;
  const std::string_view s(v);
  return !s.empty() && s != "0" && s != "off" && s != "false";
}

DashboardCheck check_dashboard_text(const std::string& text) {
  DashboardCheck out;
  json::JsonValue root;
  std::string error;
  if (!json::parse(text, &root, &error)) {
    out.problems.push_back("parse error: " + error);
    return out;
  }
  if (root.kind != json::JsonValue::Kind::kObject) {
    out.problems.push_back("top-level value is not an object");
    return out;
  }
  if (root.text("schema") != "mh_dashboard_v1") {
    out.problems.push_back("missing or unknown schema marker");
  }
  out.time_s = root.num("time_s");
  out.ticks = static_cast<std::uint64_t>(root.num("ticks"));
  out.ranks = static_cast<std::size_t>(root.num("ranks"));
  const auto ring_capacity =
      static_cast<std::size_t>(root.num("ring_capacity"));
  if (out.ranks == 0) out.problems.push_back("ranks must be >= 1");
  if (ring_capacity == 0) {
    out.problems.push_back("ring_capacity must be >= 1");
  }

  const json::JsonValue* instruments = root.find("instruments");
  if (instruments == nullptr ||
      instruments->kind != json::JsonValue::Kind::kArray) {
    out.problems.push_back("missing instruments array");
  } else {
    out.instruments = instruments->array.size();
    for (const json::JsonValue& inst : instruments->array) {
      const std::string name(inst.text("name"));
      if (name.empty()) {
        out.problems.push_back("instrument with empty name");
        continue;
      }
      const json::JsonValue* lanes = inst.find("lanes");
      if (lanes != nullptr && lanes->kind == json::JsonValue::Kind::kArray &&
          lanes->array.size() != out.ranks) {
        out.problems.push_back(name + ": lanes length " +
                               std::to_string(lanes->array.size()) +
                               " != ranks " + std::to_string(out.ranks));
      }
      const json::JsonValue* ring = inst.find("ring");
      if (ring != nullptr && ring->kind == json::JsonValue::Kind::kArray &&
          ring_capacity > 0 && ring->array.size() > ring_capacity) {
        out.problems.push_back(name + ": ring overflows capacity");
      }
    }
  }

  const json::JsonValue* alerts = root.find("alerts");
  if (alerts == nullptr || alerts->kind != json::JsonValue::Kind::kObject) {
    out.problems.push_back("missing alerts object");
  } else {
    const json::JsonValue* active = alerts->find("active");
    if (active != nullptr &&
        active->kind == json::JsonValue::Kind::kArray) {
      for (const json::JsonValue& a : active->array) {
        const std::string_view state = a.text("state");
        if (state == "firing") ++out.firing;
        if (state != "firing" && state != "pending") {
          out.problems.push_back("active alert with state '" +
                                 std::string(state) + "'");
        }
      }
    }
    const json::JsonValue* history = alerts->find("history");
    if (history != nullptr &&
        history->kind == json::JsonValue::Kind::kArray) {
      out.history = history->array.size();
      const bool truncated = alerts->num("dropped", 0.0) > 0.0;
      // A resolve must follow a fire for the same (rule, rank) cell —
      // unless the bounded history dropped the front.
      std::set<std::pair<std::string, double>> firing_cells;
      for (const json::JsonValue& ev : history->array) {
        const std::string rule(ev.text("rule"));
        const double rank = ev.num("rank", -2.0);
        const std::string_view state = ev.text("state");
        if (state == "firing") {
          firing_cells.insert({rule, rank});
        } else if (state == "resolved") {
          if (firing_cells.count({rule, rank}) == 0 && !truncated) {
            out.problems.push_back("history: resolve without fire for " +
                                   rule);
          }
          firing_cells.erase({rule, rank});
        } else {
          out.problems.push_back("history event with state '" +
                                 std::string(state) + "'");
        }
      }
    }
  }

  out.ok = out.problems.empty();
  return out;
}

DashboardCheck check_dashboard_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) {
    DashboardCheck out;
    out.problems.push_back("cannot open " + path);
    return out;
  }
  std::ostringstream buf;
  buf << is.rdbuf();
  return check_dashboard_text(buf.str());
}

}  // namespace mh::obs
