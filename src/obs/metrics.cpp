#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "common/diagnostics.hpp"

namespace mh::obs {

std::size_t log_bucket_index(double value) noexcept {
  int exp = 0;
  std::frexp(std::max(value, 0.0), &exp);
  return static_cast<std::size_t>(std::clamp(exp + 31, 0, 63));
}

double log_bucket_upper(std::size_t index) noexcept {
  return std::ldexp(1.0, static_cast<int>(index) - 31);
}

double HistogramSnapshot::quantile(double q) const noexcept {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target observation (1-based, rounded up): the smallest
  // bucket whose cumulative count reaches it holds the quantile.
  const double target = std::max(1.0, q * static_cast<double>(count));
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    if (buckets[i] == 0) continue;
    const double reached = static_cast<double>(cum + buckets[i]);
    if (reached >= target) {
      // Linear interpolation across the bucket's value range by the
      // fraction of its population below the target rank.
      const double lower = i == 0 ? 0.0 : log_bucket_upper(i - 1);
      const double upper = log_bucket_upper(i);
      const double frac =
          (target - static_cast<double>(cum)) /
          static_cast<double>(buckets[i]);
      return std::clamp(lower + frac * (upper - lower), min, max);
    }
    cum += buckets[i];
  }
  return max;
}

HistogramSnapshot merge(const HistogramSnapshot& a,
                        const HistogramSnapshot& b) noexcept {
  // An empty side contributes nothing; returning the other side verbatim
  // keeps the count==0 min/max convention (0 placeholders) from polluting
  // the real extrema.
  if (a.count == 0) return b;
  if (b.count == 0) return a;
  HistogramSnapshot out;
  out.count = a.count + b.count;
  out.sum = a.sum + b.sum;
  out.min = std::min(a.min, b.min);
  out.max = std::max(a.max, b.max);
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    out.buckets[i] = a.buckets[i] + b.buckets[i];
  }
  return out;
}

void Histogram::observe(double value) noexcept {
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = min_.load(std::memory_order_relaxed);
  while (value < cur &&
         !min_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (value > cur &&
         !max_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
  atomic_add(sum_, value);
  buckets_[log_bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::snapshot() const noexcept {
  HistogramSnapshot s;
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  // The ±inf sentinels mean "no observations yet"; report 0 instead so an
  // exporter never serializes an infinity.
  const double mn = min_.load(std::memory_order_relaxed);
  const double mx = max_.load(std::memory_order_relaxed);
  s.min = std::isfinite(mn) ? mn : 0.0;
  s.max = std::isfinite(mx) ? mx : 0.0;
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return s;
}

MetricsRegistry::Entry& MetricsRegistry::find_or_create(std::string_view name,
                                                        std::string_view help,
                                                        Labels&& labels,
                                                        MetricKind kind) {
  std::scoped_lock lock(mu_);
  for (const auto& e : entries_) {
    if (e->name == name && e->labels == labels) {
      MH_CHECK(e->kind == kind,
               "metric re-registered with a different kind: " +
                   std::string(name));
      return *e;
    }
  }
  auto entry = std::make_unique<Entry>();
  entry->name = std::string(name);
  entry->help = std::string(help);
  entry->kind = kind;
  entry->labels = std::move(labels);
  switch (kind) {
    case MetricKind::kCounter:
      entry->counter.reset(new Counter());
      break;
    case MetricKind::kGauge:
      entry->gauge.reset(new Gauge());
      break;
    case MetricKind::kHistogram:
      entry->histogram.reset(new Histogram());
      break;
  }
  entries_.push_back(std::move(entry));
  return *entries_.back();
}

Counter& MetricsRegistry::counter(std::string_view name, std::string_view help,
                                  Labels labels) {
  return *find_or_create(name, help, std::move(labels), MetricKind::kCounter)
              .counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name, std::string_view help,
                              Labels labels) {
  return *find_or_create(name, help, std::move(labels), MetricKind::kGauge)
              .gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::string_view help, Labels labels) {
  return *find_or_create(name, help, std::move(labels), MetricKind::kHistogram)
              .histogram;
}

std::vector<MetricsRegistry::Sample> MetricsRegistry::snapshot() const {
  std::scoped_lock lock(mu_);
  std::vector<Sample> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) {
    Sample s;
    s.name = e->name;
    s.help = e->help;
    s.kind = e->kind;
    s.labels = e->labels;
    switch (e->kind) {
      case MetricKind::kCounter:
        s.value = e->counter->value();
        break;
      case MetricKind::kGauge:
        s.value = e->gauge->value();
        break;
      case MetricKind::kHistogram:
        s.hist = e->histogram->snapshot();
        break;
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::size_t MetricsRegistry::size() const {
  std::scoped_lock lock(mu_);
  return entries_.size();
}

MetricsRegistry& MetricsRegistry::global() noexcept {
  static MetricsRegistry* registry = new MetricsRegistry();  // never destroyed
  return *registry;
}

}  // namespace mh::obs
