#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "common/diagnostics.hpp"

namespace mh::obs {

void Histogram::observe(double value) noexcept {
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = min_.load(std::memory_order_relaxed);
  while (value < cur &&
         !min_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (value > cur &&
         !max_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
  atomic_add(sum_, value);
  buckets_[log_bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::snapshot() const noexcept {
  HistogramSnapshot s;
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  // The ±inf sentinels mean "no observations yet"; report 0 instead so an
  // exporter never serializes an infinity.
  const double mn = min_.load(std::memory_order_relaxed);
  const double mx = max_.load(std::memory_order_relaxed);
  s.min = std::isfinite(mn) ? mn : 0.0;
  s.max = std::isfinite(mx) ? mx : 0.0;
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return s;
}

MetricsRegistry::Entry& MetricsRegistry::find_or_create(std::string_view name,
                                                        std::string_view help,
                                                        Labels&& labels,
                                                        MetricKind kind) {
  std::scoped_lock lock(mu_);
  for (const auto& e : entries_) {
    if (e->name == name && e->labels == labels) {
      MH_CHECK(e->kind == kind,
               "metric re-registered with a different kind: " +
                   std::string(name));
      return *e;
    }
  }
  auto entry = std::make_unique<Entry>();
  entry->name = std::string(name);
  entry->help = std::string(help);
  entry->kind = kind;
  entry->labels = std::move(labels);
  switch (kind) {
    case MetricKind::kCounter:
      entry->counter.reset(new Counter());
      break;
    case MetricKind::kGauge:
      entry->gauge.reset(new Gauge());
      break;
    case MetricKind::kHistogram:
      entry->histogram.reset(new Histogram());
      break;
  }
  entries_.push_back(std::move(entry));
  return *entries_.back();
}

Counter& MetricsRegistry::counter(std::string_view name, std::string_view help,
                                  Labels labels) {
  return *find_or_create(name, help, std::move(labels), MetricKind::kCounter)
              .counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name, std::string_view help,
                              Labels labels) {
  return *find_or_create(name, help, std::move(labels), MetricKind::kGauge)
              .gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::string_view help, Labels labels) {
  return *find_or_create(name, help, std::move(labels), MetricKind::kHistogram)
              .histogram;
}

std::vector<MetricsRegistry::Sample> MetricsRegistry::snapshot() const {
  std::scoped_lock lock(mu_);
  std::vector<Sample> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) {
    Sample s;
    s.name = e->name;
    s.help = e->help;
    s.kind = e->kind;
    s.labels = e->labels;
    switch (e->kind) {
      case MetricKind::kCounter:
        s.value = e->counter->value();
        break;
      case MetricKind::kGauge:
        s.value = e->gauge->value();
        break;
      case MetricKind::kHistogram:
        s.hist = e->histogram->snapshot();
        break;
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::size_t MetricsRegistry::size() const {
  std::scoped_lock lock(mu_);
  return entries_.size();
}

MetricsRegistry& MetricsRegistry::global() noexcept {
  static MetricsRegistry* registry = new MetricsRegistry();  // never destroyed
  return *registry;
}

}  // namespace mh::obs
