#include "obs/trace_reader.hpp"

#include <fstream>
#include <sstream>

#include "obs/json.hpp"

namespace mh::obs {
namespace {

using json::JsonValue;

Category parse_category(std::string_view cat) {
  const std::size_t comma = cat.find(',');
  const std::string_view head =
      comma == std::string_view::npos ? cat : cat.substr(0, comma);
  for (std::size_t i = 0; i < kCategoryCount; ++i) {
    const auto c = static_cast<Category>(i);
    if (head == category_name(c)) return c;
  }
  return Category::kOther;
}

std::uint64_t id_arg(const JsonValue& args, std::string_view key) {
  const double v = args.num(key, 0.0);
  return v > 0.0 ? static_cast<std::uint64_t>(v) : 0;
}

}  // namespace

bool ReadSpan::has_arg(std::string_view key) const {
  for (const auto& [k, v] : args) {
    if (k == key) return true;
  }
  return false;
}

double ReadSpan::arg(std::string_view key, double fallback) const {
  for (const auto& [k, v] : args) {
    if (k == key) return v;
  }
  return fallback;
}

std::vector<std::pair<std::uint64_t, std::uint64_t>> ReadTrace::edges() const {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
  for (const ReadFlow& f : flows) {
    if (f.start && f.from != 0 && f.to != 0) out.emplace_back(f.from, f.to);
  }
  return out;
}

bool ReadTrace::pid_is_sim(int pid) const {
  const auto it = process_names.find(pid);
  return it != process_names.end() &&
         it->second.find("simulated-time") != std::string::npos;
}

bool read_chrome_trace(std::istream& is, ReadTrace* out, std::string* error) {
  std::ostringstream buf;
  buf << is.rdbuf();
  const std::string text = buf.str();

  JsonValue root;
  if (!json::parse(text, &root, error)) return false;
  if (root.kind != JsonValue::Kind::kObject) {
    if (error != nullptr) *error = "top-level JSON value is not an object";
    return false;
  }
  const JsonValue* events = root.find("traceEvents");
  if (events == nullptr || events->kind != JsonValue::Kind::kArray) {
    if (error != nullptr) *error = "missing traceEvents array";
    return false;
  }

  for (const JsonValue& ev : events->array) {
    if (ev.kind != JsonValue::Kind::kObject) continue;
    const std::string_view ph = ev.text("ph");
    const int pid = static_cast<int>(ev.num("pid"));
    const int tid = static_cast<int>(ev.num("tid"));
    const JsonValue* args = ev.find("args");
    static const JsonValue kEmpty;
    const JsonValue& a =
        args != nullptr && args->kind == JsonValue::Kind::kObject ? *args
                                                                  : kEmpty;
    if (ph == "X") {
      ReadSpan s;
      s.name = std::string(ev.text("name"));
      s.cat = std::string(ev.text("cat"));
      s.category = parse_category(s.cat);
      s.pid = pid;
      s.tid = tid;
      s.start_us = ev.num("ts");
      s.dur_us = ev.num("dur");
      s.id = id_arg(a, "mh_id");
      s.parent = id_arg(a, "mh_parent");
      s.task = id_arg(a, "mh_task");
      for (const auto& [k, v] : a.object) {
        if (v.kind == JsonValue::Kind::kNumber && k != "mh_id" &&
            k != "mh_parent" && k != "mh_task") {
          s.args.emplace_back(k, v.number);
        }
      }
      out->spans.push_back(std::move(s));
    } else if (ph == "s" || ph == "f") {
      ReadFlow f;
      f.start = ph == "s";
      f.flow_id = static_cast<std::uint64_t>(ev.num("id"));
      f.from = id_arg(a, "mh_from");
      f.to = id_arg(a, "mh_to");
      f.pid = pid;
      f.tid = tid;
      f.ts_us = ev.num("ts");
      out->flows.push_back(f);
    } else if (ph == "M") {
      const std::string_view kind = ev.text("name");
      const std::string_view name = a.text("name");
      if (kind == "process_name") {
        out->process_names[pid] = std::string(name);
      } else if (kind == "thread_name") {
        out->thread_names[{pid, tid}] = std::string(name);
      } else if (kind == "mh_dropped_spans") {
        out->dropped_spans += static_cast<std::uint64_t>(a.num("value"));
      }
    }
  }
  return true;
}

bool read_chrome_trace_file(const std::string& path, ReadTrace* out,
                            std::string* error) {
  std::ifstream is(path);
  if (!is) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  return read_chrome_trace(is, out, error);
}

}  // namespace mh::obs
