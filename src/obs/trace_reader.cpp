#include "obs/trace_reader.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>

namespace mh::obs {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON DOM. Numbers are doubles (trace files carry nothing needing
// more than 2^53 integer precision in practice: ids are minted from 1).
// ---------------------------------------------------------------------------

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* find(std::string_view key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
  double num(std::string_view key, double fallback = 0.0) const {
    const JsonValue* v = find(key);
    return v != nullptr && v->kind == Kind::kNumber ? v->number : fallback;
  }
  std::string_view text(std::string_view key) const {
    const JsonValue* v = find(key);
    return v != nullptr && v->kind == Kind::kString ? std::string_view(v->str)
                                                    : std::string_view();
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view input) : in_(input) {}

  bool parse(JsonValue* out, std::string* error) {
    bool ok = value(*out);
    skip_ws();
    if (ok && pos_ != in_.size()) {
      ok = fail("trailing data after JSON value");
    }
    if (!ok && error != nullptr) *error = error_;
    return ok;
  }

 private:
  bool fail(const std::string& what) {
    if (error_.empty()) {
      error_ = what + " at byte " + std::to_string(pos_);
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < in_.size() &&
           (in_[pos_] == ' ' || in_[pos_] == '\t' || in_[pos_] == '\n' ||
            in_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < in_.size() && in_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (in_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return fail("bad literal");
  }

  bool value(JsonValue& out) {
    skip_ws();
    if (pos_ >= in_.size()) return fail("unexpected end of input");
    switch (in_[pos_]) {
      case '{': return object(out);
      case '[': return array(out);
      case '"':
        out.kind = JsonValue::Kind::kString;
        return string(out.str);
      case 't':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = true;
        return literal("true");
      case 'f':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = false;
        return literal("false");
      case 'n':
        out.kind = JsonValue::Kind::kNull;
        return literal("null");
      default: return number(out);
    }
  }

  bool object(JsonValue& out) {
    out.kind = JsonValue::Kind::kObject;
    if (!consume('{')) return fail("expected '{'");
    if (consume('}')) return true;
    while (true) {
      skip_ws();
      std::string key;
      if (pos_ >= in_.size() || in_[pos_] != '"' || !string(key)) {
        return fail("expected object key");
      }
      if (!consume(':')) return fail("expected ':'");
      JsonValue v;
      if (!value(v)) return false;
      out.object.emplace_back(std::move(key), std::move(v));
      if (consume(',')) continue;
      if (consume('}')) return true;
      return fail("expected ',' or '}'");
    }
  }

  bool array(JsonValue& out) {
    out.kind = JsonValue::Kind::kArray;
    if (!consume('[')) return fail("expected '['");
    if (consume(']')) return true;
    while (true) {
      JsonValue v;
      if (!value(v)) return false;
      out.array.push_back(std::move(v));
      if (consume(',')) continue;
      if (consume(']')) return true;
      return fail("expected ',' or ']'");
    }
  }

  bool string(std::string& out) {
    if (pos_ >= in_.size() || in_[pos_] != '"') return fail("expected string");
    ++pos_;
    out.clear();
    while (pos_ < in_.size()) {
      const char c = in_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= in_.size()) break;
      const char esc = in_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > in_.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = in_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return fail("bad \\u escape");
            }
          }
          // Our writer only emits \u00xx for control bytes; encode the
          // general case as UTF-8 anyway.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: return fail("bad escape");
      }
    }
    return fail("unterminated string");
  }

  bool number(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < in_.size() && in_[pos_] == '-') ++pos_;
    while (pos_ < in_.size() &&
           (std::isdigit(static_cast<unsigned char>(in_[pos_])) != 0 ||
            in_[pos_] == '.' || in_[pos_] == 'e' || in_[pos_] == 'E' ||
            in_[pos_] == '+' || in_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected number");
    const std::string token(in_.substr(start, pos_ - start));
    char* end = nullptr;
    out.kind = JsonValue::Kind::kNumber;
    out.number = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0' || !std::isfinite(out.number)) {
      return fail("bad number");
    }
    return true;
  }

  std::string_view in_;
  std::size_t pos_ = 0;
  std::string error_;
};

Category parse_category(std::string_view cat) {
  const std::size_t comma = cat.find(',');
  const std::string_view head =
      comma == std::string_view::npos ? cat : cat.substr(0, comma);
  for (std::size_t i = 0; i < kCategoryCount; ++i) {
    const auto c = static_cast<Category>(i);
    if (head == category_name(c)) return c;
  }
  return Category::kOther;
}

std::uint64_t id_arg(const JsonValue& args, std::string_view key) {
  const double v = args.num(key, 0.0);
  return v > 0.0 ? static_cast<std::uint64_t>(v) : 0;
}

}  // namespace

bool ReadSpan::has_arg(std::string_view key) const {
  for (const auto& [k, v] : args) {
    if (k == key) return true;
  }
  return false;
}

double ReadSpan::arg(std::string_view key, double fallback) const {
  for (const auto& [k, v] : args) {
    if (k == key) return v;
  }
  return fallback;
}

std::vector<std::pair<std::uint64_t, std::uint64_t>> ReadTrace::edges() const {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
  for (const ReadFlow& f : flows) {
    if (f.start && f.from != 0 && f.to != 0) out.emplace_back(f.from, f.to);
  }
  return out;
}

bool ReadTrace::pid_is_sim(int pid) const {
  const auto it = process_names.find(pid);
  return it != process_names.end() &&
         it->second.find("simulated-time") != std::string::npos;
}

bool read_chrome_trace(std::istream& is, ReadTrace* out, std::string* error) {
  std::ostringstream buf;
  buf << is.rdbuf();
  const std::string text = buf.str();

  JsonValue root;
  if (!JsonParser(text).parse(&root, error)) return false;
  if (root.kind != JsonValue::Kind::kObject) {
    if (error != nullptr) *error = "top-level JSON value is not an object";
    return false;
  }
  const JsonValue* events = root.find("traceEvents");
  if (events == nullptr || events->kind != JsonValue::Kind::kArray) {
    if (error != nullptr) *error = "missing traceEvents array";
    return false;
  }

  for (const JsonValue& ev : events->array) {
    if (ev.kind != JsonValue::Kind::kObject) continue;
    const std::string_view ph = ev.text("ph");
    const int pid = static_cast<int>(ev.num("pid"));
    const int tid = static_cast<int>(ev.num("tid"));
    const JsonValue* args = ev.find("args");
    static const JsonValue kEmpty;
    const JsonValue& a =
        args != nullptr && args->kind == JsonValue::Kind::kObject ? *args
                                                                  : kEmpty;
    if (ph == "X") {
      ReadSpan s;
      s.name = std::string(ev.text("name"));
      s.cat = std::string(ev.text("cat"));
      s.category = parse_category(s.cat);
      s.pid = pid;
      s.tid = tid;
      s.start_us = ev.num("ts");
      s.dur_us = ev.num("dur");
      s.id = id_arg(a, "mh_id");
      s.parent = id_arg(a, "mh_parent");
      s.task = id_arg(a, "mh_task");
      for (const auto& [k, v] : a.object) {
        if (v.kind == JsonValue::Kind::kNumber && k != "mh_id" &&
            k != "mh_parent" && k != "mh_task") {
          s.args.emplace_back(k, v.number);
        }
      }
      out->spans.push_back(std::move(s));
    } else if (ph == "s" || ph == "f") {
      ReadFlow f;
      f.start = ph == "s";
      f.flow_id = static_cast<std::uint64_t>(ev.num("id"));
      f.from = id_arg(a, "mh_from");
      f.to = id_arg(a, "mh_to");
      f.pid = pid;
      f.tid = tid;
      f.ts_us = ev.num("ts");
      out->flows.push_back(f);
    } else if (ph == "M") {
      const std::string_view kind = ev.text("name");
      const std::string_view name = a.text("name");
      if (kind == "process_name") {
        out->process_names[pid] = std::string(name);
      } else if (kind == "thread_name") {
        out->thread_names[{pid, tid}] = std::string(name);
      } else if (kind == "mh_dropped_spans") {
        out->dropped_spans += static_cast<std::uint64_t>(a.num("value"));
      }
    }
  }
  return true;
}

bool read_chrome_trace_file(const std::string& path, ReadTrace* out,
                            std::string* error) {
  std::ifstream is(path);
  if (!is) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  return read_chrome_trace(is, out, error);
}

}  // namespace mh::obs
