// Always-on bounded flight recorder — the "black box" of the runtime.
//
// Wraps a ring-buffer TraceSession (see TraceSession(ring_spans_per_thread))
// so tracing can stay armed in every bench and test run at a fixed memory
// budget: each thread keeps only its most recent spans, evictions are
// counted (mh_trace_dropped_spans_total), and the buffer can be dumped to a
// Chrome/Perfetto trace on demand — most importantly from the fault layer's
// failure paths, so the first FaultError of a run leaves behind the trace
// of what led up to it without anyone having re-run with MH_TRACE.
//
// Arming conventions:
//   MH_FLIGHT_RECORDER=path        dump destination (arms the recorder)
//   MH_FLIGHT_RECORDER_SPANS=N     per-thread span budget (default 8192)
//
// arm()/arm_from_env() create the process-global recorder once, install its
// session as TraceSession::current() when no session is installed yet (so
// the engine/pool/world layers record into it by default), and register an
// atexit dump so the trace survives normal termination too. Tests that need
// isolation construct their own FlightRecorder instances instead.
#pragma once

#include <atomic>
#include <cstddef>
#include <mutex>
#include <string>
#include <string_view>

#include "obs/trace.hpp"

namespace mh::obs {

class FlightRecorder {
 public:
  struct Config {
    std::string path;                    ///< dump destination ("" = no dump)
    std::size_t spans_per_thread = 8192; ///< ring budget per thread
    bool install_as_current = true;      ///< adopt as TraceSession::current()
    bool dump_at_exit = true;            ///< global arm only: atexit dump
    bool dump_on_fault = true;           ///< note_failure() dumps (once)
  };

  /// A free-standing recorder (tests, embedding). Does not touch the
  /// process-global slot regardless of cfg.install_as_current.
  explicit FlightRecorder(Config cfg);
  ~FlightRecorder();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// The bounded session call sites record into.
  TraceSession& session() noexcept { return session_; }
  const std::string& path() const noexcept { return cfg_.path; }

  /// Write the ring contents (with dropped-span metadata) to cfg_.path.
  /// Thread-safe and exception-free; returns false when the path is empty
  /// or the write fails. `reason` labels the dump in
  /// mh_flight_recorder_dumps_total{reason=...}.
  bool dump(std::string_view reason = "manual") noexcept;
  std::size_t dump_count() const noexcept;

  // --- process-global recorder ---------------------------------------------
  /// Arm the global recorder (idempotent: later calls return the first
  /// instance). Installs the session as TraceSession::current() if none is
  /// installed and registers the atexit dump per cfg.
  static FlightRecorder* arm(Config cfg);
  /// arm() from MH_FLIGHT_RECORDER / MH_FLIGHT_RECORDER_SPANS; returns
  /// nullptr (and stays unarmed) when the env var is unset or empty.
  static FlightRecorder* arm_from_env();
  /// The armed global recorder, or nullptr.
  static FlightRecorder* armed() noexcept;

  /// Failure hook (called from FaultError's constructor): dump the global
  /// recorder once per process so the first failure's lead-up is captured.
  /// No-op when unarmed; never throws; later failures are free.
  static void note_failure(const char* code, const char* what) noexcept;

 private:
  Config cfg_;
  TraceSession session_;
  mutable std::mutex dump_mu_;
  std::size_t dumps_ = 0;
  std::atomic<bool> fault_dumped_{false};
};

}  // namespace mh::obs
