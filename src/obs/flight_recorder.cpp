#include "obs/flight_recorder.hpp"

#include <cstdlib>

#include "obs/metrics.hpp"

namespace mh::obs {
namespace {

// The global recorder is a leaked singleton (like MetricsRegistry::global):
// the atexit dump and late FaultErrors during static destruction must still
// find a live session.
std::atomic<FlightRecorder*> g_recorder{nullptr};
std::mutex g_arm_mu;

void dump_at_exit() {
  if (FlightRecorder* r = FlightRecorder::armed()) r->dump("exit");
}

}  // namespace

FlightRecorder::FlightRecorder(Config cfg)
    : cfg_(std::move(cfg)),
      session_(cfg_.spans_per_thread == 0 ? 1 : cfg_.spans_per_thread) {}

FlightRecorder::~FlightRecorder() = default;

bool FlightRecorder::dump(std::string_view reason) noexcept {
  if (cfg_.path.empty()) return false;
  bool ok = false;
  try {
    std::scoped_lock lock(dump_mu_);
    ok = session_.write_chrome_trace_file(cfg_.path);
    if (ok) {
      ++dumps_;
      MetricsRegistry::global()
          .counter("mh_flight_recorder_dumps_total",
                   "flight-recorder trace dumps by reason",
                   {{"reason", std::string(reason)}})
          .inc();
    }
  } catch (...) {
    ok = false;
  }
  return ok;
}

std::size_t FlightRecorder::dump_count() const noexcept {
  std::scoped_lock lock(dump_mu_);
  return dumps_;
}

FlightRecorder* FlightRecorder::arm(Config cfg) {
  std::scoped_lock lock(g_arm_mu);
  if (FlightRecorder* existing = g_recorder.load(std::memory_order_acquire)) {
    return existing;
  }
  const bool dump_exit = cfg.dump_at_exit;
  const bool install = cfg.install_as_current;
  auto* rec = new FlightRecorder(std::move(cfg));  // intentionally leaked
  if (install && TraceSession::current() == nullptr) {
    TraceSession::set_current(&rec->session());
  }
  g_recorder.store(rec, std::memory_order_release);
  if (dump_exit) std::atexit(dump_at_exit);
  return rec;
}

FlightRecorder* FlightRecorder::arm_from_env() {
  const char* path = std::getenv("MH_FLIGHT_RECORDER");
  if (path == nullptr || *path == '\0') return nullptr;
  Config cfg;
  cfg.path = path;
  if (const char* spans = std::getenv("MH_FLIGHT_RECORDER_SPANS")) {
    const long v = std::atol(spans);
    if (v > 0) cfg.spans_per_thread = static_cast<std::size_t>(v);
  }
  return arm(std::move(cfg));
}

FlightRecorder* FlightRecorder::armed() noexcept {
  return g_recorder.load(std::memory_order_acquire);
}

void FlightRecorder::note_failure(const char* code, const char* /*what*/)
    noexcept {
  FlightRecorder* rec = armed();
  if (rec == nullptr || !rec->cfg_.dump_on_fault) return;
  // First failure wins: the lead-up to the initial fault is the evidence;
  // cascading FaultErrors after it would only overwrite with less context.
  if (rec->fault_dumped_.exchange(true, std::memory_order_acq_rel)) return;
  rec->dump(code != nullptr ? code : "fault");
}

}  // namespace mh::obs
