// In-band cluster telemetry: delta-encoded metrics snapshots, shipped from
// every rank to an aggregator, rolled up exactly.
//
// The observability layers so far (tracing, metrics export, flight
// recorder) are post-mortem — files dumped at exit. Irregular computations
// misbehave *at runtime*: stragglers, queue blow-ups, breaker trips and
// rank deaths are only actionable while the run is live. This header is
// the transport + state half of the live health plane (health.hpp holds
// the detector/alert half):
//
//   TelemetryPublisher  — per-rank: diffs successive MetricsRegistry
//                         snapshots and emits only what changed (counters
//                         as increments, gauges as levels, histograms as
//                         bucket-wise increments).
//   ScenarioTelemetry   — the same delta encoding for simulation scenarios
//                         that publish hand-computed per-rank values on the
//                         simulated clock instead of owning registries.
//   TelemetryAggregator — aggregator-rank state: an exact cluster rollup
//                         (counters sum across ranks; gauges keep per-rank
//                         lanes plus min/median/max; histograms merge
//                         bucket-wise, lossless because every rank shares
//                         the log-bucket geometry) and a bounded
//                         per-instrument time-series ring for dashboards.
//
// Deltas are plain structs: in clustersim they hop between ranks at
// simulated time, in World they ride active messages (World::telemetry_tick
// charges their encoded size to the interconnect and the send fault site,
// so telemetry is as mortal as the data plane it watches).
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"

namespace mh::obs {

/// One changed instrument inside a delta-encoded snapshot.
struct TelemetryUpdate {
  std::string name;
  Labels labels;
  MetricKind kind = MetricKind::kGauge;
  /// Counter increment since the rank's previous publish.
  double delta = 0.0;
  /// Gauge level at publish time.
  double value = 0.0;
  /// Histogram increment: count/sum/buckets are since the previous publish;
  /// min/max are the source instrument's cumulative extrema (monotone over
  /// an instrument's lifetime, so the latest value is exact).
  HistogramSnapshot hist;
};

/// What one rank ships per telemetry tick. Empty `updates` never ships —
/// that is the delta encoding's idle cost: zero.
struct TelemetryDelta {
  std::size_t rank = 0;
  /// Per-rank publish sequence number (1-based); the aggregator counts
  /// skips as lost snapshots.
  std::uint64_t seq = 0;
  double time_s = 0.0;
  std::vector<TelemetryUpdate> updates;

  /// Deterministic wire-size model, charged to the interconnect by the
  /// World transport and reported by bench_telemetry.
  double encoded_bytes() const;
};

/// Per-rank publisher over a MetricsRegistry: collect() snapshots the
/// registry and emits only instruments that changed since the previous
/// collect (first collect ships everything non-zero).
class TelemetryPublisher {
 public:
  explicit TelemetryPublisher(std::size_t rank, const MetricsRegistry& registry)
      : rank_(rank), registry_(&registry) {}

  TelemetryDelta collect(double time_s);

 private:
  struct Baseline {
    double value = 0.0;
    HistogramSnapshot hist;
  };

  std::size_t rank_ = 0;
  const MetricsRegistry* registry_;
  std::uint64_t seq_ = 0;
  std::map<std::string, Baseline> last_;
};

/// Delta encoder for scenarios with no per-rank registry (the clustersim
/// steal and churn loops): the scenario sets current per-rank levels /
/// running totals, and collect() ships one delta per rank that changed.
class ScenarioTelemetry {
 public:
  explicit ScenarioTelemetry(std::size_t ranks)
      : ranks_(ranks), state_(ranks) {}

  std::size_t ranks() const { return ranks_; }

  /// Current level of a per-rank gauge.
  void gauge(std::size_t rank, std::string_view name, double value);
  /// Current running total of a per-rank counter (shipped as an increment).
  void counter(std::size_t rank, std::string_view name, double total);
  /// Current cumulative snapshot of a per-rank histogram.
  void histogram(std::size_t rank, std::string_view name,
                 const HistogramSnapshot& cumulative);

  /// Deltas for every rank with changes since the previous collect, in
  /// rank order. Ranks with nothing new ship nothing.
  std::vector<TelemetryDelta> collect(double time_s);

 private:
  struct Cell {
    MetricKind kind = MetricKind::kGauge;
    double current = 0.0;
    double published = 0.0;
    bool ever_published = false;
    HistogramSnapshot hist_current;
    HistogramSnapshot hist_published;
  };
  struct Rank {
    std::map<std::string, Cell> cells;
    std::uint64_t seq = 0;
  };

  std::size_t ranks_ = 0;
  std::vector<Rank> state_;
};

/// Aggregator-rank state: exact cluster rollup + bounded history rings.
class TelemetryAggregator {
 public:
  struct Config {
    std::size_t ranks = 1;
    /// Points kept per instrument ring; older points are evicted (and
    /// counted) so aggregator memory is bounded regardless of run length.
    std::size_t ring_capacity = 128;
  };

  struct RingPoint {
    double time_s = 0.0;
    double value = 0.0;
  };

  /// One rolled-up instrument (same (name, labels) across all ranks).
  struct Instrument {
    std::string name;
    Labels labels;
    MetricKind kind = MetricKind::kGauge;
    /// Counters: cluster total (sum of per-rank totals). Gauges: unused
    /// (see lanes). Histograms: merged count.
    double total = 0.0;
    /// Per-rank lanes: counters hold the rank's running total, gauges the
    /// rank's last level. Indexed by rank; `seen` gates validity.
    std::vector<double> lanes;
    std::vector<bool> seen;
    /// Per-rank cumulative histograms; merged() folds them losslessly.
    std::vector<HistogramSnapshot> lane_hists;
    /// Bounded rollup history: counters ring the cluster total, gauges the
    /// cluster median, histograms the merged count.
    std::deque<RingPoint> ring;
    std::uint64_t ring_evicted = 0;
    bool dirty = false;

    /// Lossless bucket-wise merge across rank lanes.
    HistogramSnapshot merged() const;
  };

  struct GaugeStats {
    double min = 0.0;
    double median = 0.0;
    double max = 0.0;
    std::size_t lanes = 0;  ///< ranks heard from
  };

  explicit TelemetryAggregator(Config config)
      : config_(config), last_seq_(config.ranks, 0) {}

  const Config& config() const { return config_; }

  /// Fold one rank's delta into the rollup.
  void ingest(const TelemetryDelta& delta);

  /// Append one ring point per instrument touched since the last commit.
  /// Called once per detector tick so rings advance on tick time, not on
  /// per-rank arrival time.
  void commit(double time_s);

  const Instrument* find(std::string_view name,
                         const Labels& labels = {}) const;
  std::vector<const Instrument*> instruments() const;

  /// Cluster total of a counter (0 when unseen).
  double counter_total(std::string_view name) const;
  /// One rank's lane of a gauge/counter, or `fallback` when unseen.
  double lane(std::string_view name, std::size_t rank,
              double fallback = 0.0) const;
  /// min / median / max over the ranks heard from for a gauge.
  GaugeStats gauge_stats(std::string_view name) const;

  std::size_t ranks() const { return config_.ranks; }
  std::uint64_t deltas_ingested() const { return deltas_; }
  std::uint64_t updates_ingested() const { return updates_; }
  double bytes_ingested() const { return bytes_; }
  /// Snapshots lost in flight, detected from per-rank sequence gaps.
  std::uint64_t snapshots_lost() const { return lost_; }
  double last_time_s() const { return last_time_s_; }

 private:
  Instrument& find_or_create(const std::string& name, const Labels& labels,
                             MetricKind kind);
  static std::string key_of(std::string_view name, const Labels& labels);

  Config config_;
  std::vector<Instrument> instruments_;
  std::map<std::string, std::size_t> index_;
  std::vector<std::uint64_t> last_seq_;
  std::uint64_t deltas_ = 0;
  std::uint64_t updates_ = 0;
  std::uint64_t lost_ = 0;
  double bytes_ = 0.0;
  double last_time_s_ = 0.0;
};

}  // namespace mh::obs
