#include "obs/trace_diff.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <string>

namespace mh::obs {
namespace {

// Rank label of a process name written by the merged exporter: strip the
// clock-domain suffix; the single-session export's unlabelled processes
// ("wall-clock" / "simulated-time") collapse to "rank0".
std::string rank_label(const std::string& process_name) {
  for (const std::string_view suffix : {" wall-clock", " simulated-time"}) {
    if (process_name.size() > suffix.size() &&
        process_name.ends_with(suffix)) {
      return process_name.substr(0, process_name.size() - suffix.size());
    }
  }
  if (process_name == "wall-clock" || process_name == "simulated-time") {
    return "rank0";
  }
  return process_name;
}

bool in_analyzed_domain(const ReadTrace& t, const TraceAnalysis& a, int pid) {
  return t.pid_is_sim(pid) == a.sim_domain;
}

std::string pid_rank(const ReadTrace& t, int pid) {
  const auto it = t.process_names.find(pid);
  return it == t.process_names.end() ? "rank0" : rank_label(it->second);
}

struct SideTotals {
  double us = 0.0;
  std::uint64_t count = 0;
};

// Merge two name->totals maps into ranked DiffEntry rows.
std::vector<DiffEntry> align(const std::map<std::string, SideTotals>& base,
                             const std::map<std::string, SideTotals>& cur) {
  std::map<std::string, DiffEntry> merged;
  for (const auto& [name, t] : base) {
    DiffEntry& e = merged[name];
    e.name = name;
    e.base_us = t.us;
    e.base_count = t.count;
  }
  for (const auto& [name, t] : cur) {
    DiffEntry& e = merged[name];
    e.name = name;
    e.cur_us = t.us;
    e.cur_count = t.count;
  }
  std::vector<DiffEntry> out;
  out.reserve(merged.size());
  for (auto& [name, e] : merged) out.push_back(std::move(e));
  std::stable_sort(out.begin(), out.end(),
                   [](const DiffEntry& a, const DiffEntry& b) {
                     return std::abs(a.delta_us()) > std::abs(b.delta_us());
                   });
  return out;
}

// (category, rank) time composition of a critical path, normalized to 1.
std::map<std::string, double> path_composition(const ReadTrace& t,
                                               const TraceAnalysis& a) {
  std::map<std::string, double> comp;
  double total = 0.0;
  for (const CriticalStep& step : a.path) {
    if (step.span_index >= t.spans.size()) continue;
    const ReadSpan& s = t.spans[step.span_index];
    comp[std::string(category_name(s.category)) + "|" +
         pid_rank(t, s.pid)] += step.portion_us;
    total += step.portion_us;
  }
  if (total > 0.0) {
    for (auto& [key, us] : comp) us /= total;
  }
  return comp;
}

std::string fmt_us(double us) {
  char buf[48];
  const double a = std::abs(us);
  if (a >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.3f s", us / 1e6);
  } else if (a >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.2f ms", us / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.1f us", us);
  }
  return buf;
}

std::string fmt_delta(double us) {
  std::string s = fmt_us(us);
  if (us >= 0.0) s.insert(s.begin(), '+');
  return s;
}

// Share of the makespan delta one row explains, as a signed percentage
// string; empty when the makespan barely moved.
std::string fmt_share(double delta_us, double mk_delta_us) {
  if (std::abs(mk_delta_us) < 1e-9) return "";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%+.1f%%", 100.0 * delta_us / mk_delta_us);
  return buf;
}

void json_escape(std::ostream& os, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof hex, "\\u%04x", c);
          os << hex;
        } else {
          os << c;
        }
    }
  }
}

void json_number(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << "0";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  os << buf;
}

void json_entries(std::ostream& os, const char* key,
                  const std::vector<DiffEntry>& entries, bool counts) {
  os << "\"" << key << "\":[";
  bool first = true;
  for (const DiffEntry& e : entries) {
    if (!first) os << ",";
    first = false;
    os << "\n    {\"name\":\"";
    json_escape(os, e.name);
    os << "\",\"base_us\":";
    json_number(os, e.base_us);
    os << ",\"current_us\":";
    json_number(os, e.cur_us);
    os << ",\"delta_us\":";
    json_number(os, e.delta_us());
    if (counts) {
      os << ",\"base_count\":" << e.base_count
         << ",\"current_count\":" << e.cur_count;
    }
    os << "}";
  }
  os << "\n  ]";
}

}  // namespace

TraceDiff diff_traces(const ReadTrace& base, const ReadTrace& cur) {
  TraceDiff d;
  d.base = analyze_trace(base);
  d.cur = analyze_trace(cur);
  d.base_dropped = base.dropped_spans;
  d.cur_dropped = cur.dropped_spans;

  // 1. Phases: entry-wise difference of the two telescoping critical-path
  // attributions — the deltas sum to the makespan delta by construction.
  {
    std::map<std::string, SideTotals> b, c;
    for (std::size_t i = 0; i < kCategoryCount; ++i) {
      const char* name = category_name(static_cast<Category>(i));
      if (d.base.critical.category_us[i] != 0.0) {
        b[name] = {d.base.critical.category_us[i], 0};
      }
      if (d.cur.critical.category_us[i] != 0.0) {
        c[name] = {d.cur.critical.category_us[i], 0};
      }
    }
    b["wait"] = {d.base.critical.wait_us, 0};
    c["wait"] = {d.cur.critical.wait_us, 0};
    d.phases = align(b, c);
  }

  // 2. compute / wait / comm rollup.
  {
    std::map<std::string, SideTotals> b, c;
    auto roll = [](const Attribution& attr,
                   std::map<std::string, SideTotals>& out) {
      double compute = 0.0;
      for (std::size_t i = 0; i < kCategoryCount; ++i) {
        if (static_cast<Category>(i) == Category::kComm) continue;
        compute += attr.category_us[i];
      }
      out["compute"] = {compute, 0};
      out["wait"] = {attr.wait_us, 0};
      out["comm"] = {attr[Category::kComm], 0};
    };
    roll(d.base.critical, b);
    roll(d.cur.critical, c);
    d.groups = align(b, c);
  }

  // 3. Ranks: finish (since origin) and span totals per process, analyzed
  // domain only. base_us/cur_us carry the finish; counts the span counts.
  {
    std::map<std::string, SideTotals> b, c;
    auto per_rank = [](const ReadTrace& t, const TraceAnalysis& a,
                       std::map<std::string, SideTotals>& out) {
      for (const ReadSpan& s : t.spans) {
        if (!in_analyzed_domain(t, a, s.pid)) continue;
        SideTotals& r = out[pid_rank(t, s.pid)];
        r.us = std::max(r.us, s.end_us() - a.origin_us);
        ++r.count;
      }
    };
    per_rank(base, d.base, b);
    per_rank(cur, d.cur, c);
    d.ranks = align(b, c);
  }

  // 4. Task classes: total busy time per span name, analyzed domain only.
  {
    std::map<std::string, SideTotals> b, c;
    auto per_class = [](const ReadTrace& t, const TraceAnalysis& a,
                        std::map<std::string, SideTotals>& out) {
      for (const ReadSpan& s : t.spans) {
        if (!in_analyzed_domain(t, a, s.pid)) continue;
        SideTotals& cl = out[s.name];
        cl.us += s.dur_us;
        ++cl.count;
      }
    };
    per_class(base, d.base, b);
    per_class(cur, d.cur, c);
    d.classes = align(b, c);
  }

  // 5. Re-route detection: overlap of the (category, rank) compositions.
  {
    const auto bc = path_composition(base, d.base);
    const auto cc = path_composition(cur, d.cur);
    double l1 = 0.0;
    for (const auto& [key, p] : bc) {
      const auto it = cc.find(key);
      l1 += std::abs(p - (it == cc.end() ? 0.0 : it->second));
    }
    for (const auto& [key, p] : cc) {
      if (bc.find(key) == bc.end()) l1 += p;
    }
    d.path_similarity = std::max(0.0, 1.0 - 0.5 * l1);
    d.rerouted = d.path_similarity < 0.5;
  }

  const double mk_delta = d.makespan_delta_us();
  if (std::abs(mk_delta) > 1e-9) {
    double attributed = 0.0;
    for (const DiffEntry& e : d.phases) attributed += e.delta_us();
    d.attributed_fraction = std::abs(attributed) / std::abs(mk_delta);
  }
  return d;
}

void write_diff(std::ostream& os, const TraceDiff& d) {
  const double mk_delta = d.makespan_delta_us();
  char line[256];
  os << "domain: "
     << (d.base.sim_domain ? "simulated-time" : "wall-clock")
     << (d.base.sim_domain == d.cur.sim_domain ? "" : "  (MIXED — unreliable)")
     << "\n";
  os << "makespan: " << fmt_us(d.base.makespan_us()) << " -> "
     << fmt_us(d.cur.makespan_us()) << "  (" << fmt_delta(mk_delta);
  if (d.base.makespan_us() > 0.0) {
    std::snprintf(line, sizeof line, ", %+.1f%%",
                  100.0 * mk_delta / d.base.makespan_us());
    os << line;
  }
  os << ")\n";
  if (d.base_dropped != 0 || d.cur_dropped != 0) {
    os << "WARNING: truncated input (dropped spans: baseline "
       << d.base_dropped << ", current " << d.cur_dropped
       << ") — attribution may blame the wrong phase\n";
  }

  os << "\ncritical-path attribution of the delta (sums to the makespan "
        "delta):\n";
  std::snprintf(line, sizeof line, "  %-12s %14s %14s %14s %8s\n", "phase",
                "baseline", "current", "delta", "share");
  os << line;
  for (const DiffEntry& e : d.phases) {
    std::snprintf(line, sizeof line, "  %-12s %14s %14s %14s %8s\n",
                  e.name.c_str(), fmt_us(e.base_us).c_str(),
                  fmt_us(e.cur_us).c_str(), fmt_delta(e.delta_us()).c_str(),
                  fmt_share(e.delta_us(), mk_delta).c_str());
    os << line;
  }

  os << "rollup:";
  for (std::size_t i = 0; i < d.groups.size(); ++i) {
    const DiffEntry& e = d.groups[i];
    os << (i == 0 ? " " : ",  ") << e.name << " "
       << fmt_delta(e.delta_us()) << " "
       << fmt_share(e.delta_us(), mk_delta);
  }
  os << "\n";

  std::snprintf(line, sizeof line,
                "critical path: similarity %.2f — %s\n", d.path_similarity,
                d.rerouted ? "RE-ROUTED (the bottleneck moved)"
                           : "same route (the bottleneck stretched)");
  os << line;

  if (d.ranks.size() > 1 || (!d.ranks.empty() && d.ranks[0].name != "rank0")) {
    os << "\nranks (by |finish delta|):\n";
    for (const DiffEntry& e : d.ranks) {
      std::snprintf(line, sizeof line, "  %-12s finish %12s -> %12s  (%s)\n",
                    e.name.c_str(), fmt_us(e.base_us).c_str(),
                    fmt_us(e.cur_us).c_str(),
                    fmt_delta(e.delta_us()).c_str());
      os << line;
    }
  }

  os << "\ntask classes (by |busy delta|, analyzed domain):\n";
  const std::size_t nclasses = std::min<std::size_t>(d.classes.size(), 12);
  for (std::size_t i = 0; i < nclasses; ++i) {
    const DiffEntry& e = d.classes[i];
    std::snprintf(line, sizeof line,
                  "  %-24s %12s -> %12s  (%s, %llu -> %llu spans)\n",
                  e.name.c_str(), fmt_us(e.base_us).c_str(),
                  fmt_us(e.cur_us).c_str(), fmt_delta(e.delta_us()).c_str(),
                  static_cast<unsigned long long>(e.base_count),
                  static_cast<unsigned long long>(e.cur_count));
    os << line;
  }
  if (d.classes.size() > nclasses) {
    os << "  ... " << d.classes.size() - nclasses << " more\n";
  }
}

void write_diff_json(std::ostream& os, const TraceDiff& d) {
  os << "{\n  \"baseline_makespan_us\":";
  json_number(os, d.base.makespan_us());
  os << ",\n  \"current_makespan_us\":";
  json_number(os, d.cur.makespan_us());
  os << ",\n  \"delta_us\":";
  json_number(os, d.makespan_delta_us());
  os << ",\n  \"sim_domain\":" << (d.base.sim_domain ? "true" : "false");
  os << ",\n  \"dropped_spans\":{\"baseline\":" << d.base_dropped
     << ",\"current\":" << d.cur_dropped << "}";
  os << ",\n  \"path_similarity\":";
  json_number(os, d.path_similarity);
  os << ",\n  \"rerouted\":" << (d.rerouted ? "true" : "false");
  os << ",\n  \"attributed_fraction\":";
  json_number(os, d.attributed_fraction);
  os << ",\n  ";
  json_entries(os, "phases", d.phases, false);
  os << ",\n  ";
  json_entries(os, "groups", d.groups, false);
  os << ",\n  ";
  json_entries(os, "ranks", d.ranks, true);
  os << ",\n  ";
  json_entries(os, "classes", d.classes, true);
  os << "\n}\n";
}

void write_diff_markdown(std::ostream& os, const TraceDiff& d,
                         std::string_view title) {
  const double mk_delta = d.makespan_delta_us();
  os << "\n### Regression attribution: " << title << "\n\n";
  os << "Makespan " << fmt_us(d.base.makespan_us()) << " → "
     << fmt_us(d.cur.makespan_us()) << " (**" << fmt_delta(mk_delta)
     << "**); critical path "
     << (d.rerouted ? "**re-routed** (the bottleneck moved)"
                    : "kept its route")
     << ", similarity " << d.path_similarity << ".\n\n";
  if (d.base_dropped != 0 || d.cur_dropped != 0) {
    os << "> ⚠ truncated input (dropped spans: baseline " << d.base_dropped
       << ", current " << d.cur_dropped << ")\n\n";
  }
  os << "| phase | baseline | current | delta | share of delta |\n";
  os << "|---|---:|---:|---:|---:|\n";
  for (const DiffEntry& e : d.phases) {
    os << "| " << e.name << " | " << fmt_us(e.base_us) << " | "
       << fmt_us(e.cur_us) << " | " << fmt_delta(e.delta_us()) << " | "
       << fmt_share(e.delta_us(), mk_delta) << " |\n";
  }
  os << "\n";
  if (!d.classes.empty()) {
    os << "Top task classes by busy delta: ";
    const std::size_t n = std::min<std::size_t>(d.classes.size(), 3);
    for (std::size_t i = 0; i < n; ++i) {
      os << (i == 0 ? "" : ", ") << "`" << d.classes[i].name << "` "
         << fmt_delta(d.classes[i].delta_us());
    }
    os << ".\n";
  }
}

}  // namespace mh::obs
