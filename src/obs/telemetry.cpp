#include "obs/telemetry.hpp"

#include <algorithm>
#include <cmath>

namespace mh::obs {

namespace {

// Wire-size model: a small fixed header per snapshot, name + labels + one
// f64 per update, and only the non-zero buckets of a histogram increment
// (index varint + u64 count ≈ 12 bytes). Deterministic, so benches can
// gate shipped bytes.
constexpr double kDeltaHeaderBytes = 24.0;
constexpr double kUpdateFixedBytes = 10.0;
constexpr double kHistFixedBytes = 16.0;
constexpr double kHistBucketBytes = 12.0;

TelemetryAggregator::GaugeStats lane_stats(
    const TelemetryAggregator::Instrument& inst) {
  TelemetryAggregator::GaugeStats out;
  std::vector<double> values;
  for (std::size_t r = 0; r < inst.lanes.size(); ++r) {
    if (inst.seen[r]) values.push_back(inst.lanes[r]);
  }
  if (values.empty()) return out;
  std::sort(values.begin(), values.end());
  out.lanes = values.size();
  out.min = values.front();
  out.max = values.back();
  const std::size_t mid = values.size() / 2;
  out.median = values.size() % 2 == 1
                   ? values[mid]
                   : 0.5 * (values[mid - 1] + values[mid]);
  return out;
}

}  // namespace

double TelemetryDelta::encoded_bytes() const {
  double bytes = kDeltaHeaderBytes;
  for (const TelemetryUpdate& u : updates) {
    bytes += kUpdateFixedBytes + static_cast<double>(u.name.size());
    for (const auto& [k, v] : u.labels) {
      bytes += 2.0 + static_cast<double>(k.size() + v.size());
    }
    if (u.kind == MetricKind::kHistogram) {
      bytes += kHistFixedBytes;
      for (const std::uint64_t b : u.hist.buckets) {
        if (b != 0) bytes += kHistBucketBytes;
      }
    }
  }
  return bytes;
}

TelemetryDelta TelemetryPublisher::collect(double time_s) {
  TelemetryDelta out;
  out.rank = rank_;
  out.time_s = time_s;
  for (const MetricsRegistry::Sample& s : registry_->snapshot()) {
    std::string key = s.name;
    for (const auto& [k, v] : s.labels) {
      key += '\x1f';
      key += k;
      key += '\x1e';
      key += v;
    }
    Baseline& base = last_[key];
    TelemetryUpdate u;
    u.name = s.name;
    u.labels = s.labels;
    u.kind = s.kind;
    switch (s.kind) {
      case MetricKind::kCounter: {
        const double inc = s.value - base.value;
        if (inc == 0.0) continue;
        u.delta = inc;
        base.value = s.value;
        break;
      }
      case MetricKind::kGauge: {
        if (s.value == base.value) continue;
        u.value = s.value;
        base.value = s.value;
        break;
      }
      case MetricKind::kHistogram: {
        if (s.hist.count == base.hist.count) continue;
        u.hist.count = s.hist.count - base.hist.count;
        u.hist.sum = s.hist.sum - base.hist.sum;
        u.hist.min = s.hist.min;  // cumulative extrema travel verbatim
        u.hist.max = s.hist.max;
        for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
          u.hist.buckets[i] = s.hist.buckets[i] - base.hist.buckets[i];
        }
        base.hist = s.hist;
        break;
      }
    }
    out.updates.push_back(std::move(u));
  }
  // Sequence numbers count shipped snapshots only, so an idle tick (empty
  // delta, never sent) is not mistaken for a loss by the aggregator.
  if (!out.updates.empty()) out.seq = ++seq_;
  return out;
}

void ScenarioTelemetry::gauge(std::size_t rank, std::string_view name,
                              double value) {
  if (rank >= ranks_) return;
  Cell& c = state_[rank].cells[std::string(name)];
  c.kind = MetricKind::kGauge;
  c.current = value;
}

void ScenarioTelemetry::counter(std::size_t rank, std::string_view name,
                                double total) {
  if (rank >= ranks_) return;
  Cell& c = state_[rank].cells[std::string(name)];
  c.kind = MetricKind::kCounter;
  c.current = total;
}

void ScenarioTelemetry::histogram(std::size_t rank, std::string_view name,
                                  const HistogramSnapshot& cumulative) {
  if (rank >= ranks_) return;
  Cell& c = state_[rank].cells[std::string(name)];
  c.kind = MetricKind::kHistogram;
  c.hist_current = cumulative;
}

std::vector<TelemetryDelta> ScenarioTelemetry::collect(double time_s) {
  std::vector<TelemetryDelta> out;
  for (std::size_t r = 0; r < ranks_; ++r) {
    TelemetryDelta d;
    d.rank = r;
    d.time_s = time_s;
    for (auto& [name, c] : state_[r].cells) {
      TelemetryUpdate u;
      u.name = name;
      u.kind = c.kind;
      switch (c.kind) {
        case MetricKind::kCounter: {
          const double inc = c.current - c.published;
          if (inc == 0.0 && c.ever_published) continue;
          u.delta = inc;
          break;
        }
        case MetricKind::kGauge: {
          if (c.current == c.published && c.ever_published) continue;
          u.value = c.current;
          break;
        }
        case MetricKind::kHistogram: {
          if (c.hist_current.count == c.hist_published.count &&
              c.ever_published) {
            continue;
          }
          u.hist.count = c.hist_current.count - c.hist_published.count;
          u.hist.sum = c.hist_current.sum - c.hist_published.sum;
          u.hist.min = c.hist_current.min;
          u.hist.max = c.hist_current.max;
          for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
            u.hist.buckets[i] =
                c.hist_current.buckets[i] - c.hist_published.buckets[i];
          }
          break;
        }
      }
      c.published = c.current;
      c.hist_published = c.hist_current;
      c.ever_published = true;
      d.updates.push_back(std::move(u));
    }
    if (d.updates.empty()) continue;
    d.seq = ++state_[r].seq;
    out.push_back(std::move(d));
  }
  return out;
}

HistogramSnapshot TelemetryAggregator::Instrument::merged() const {
  HistogramSnapshot out;
  for (const HistogramSnapshot& lane : lane_hists) {
    out = merge(out, lane);
  }
  return out;
}

std::string TelemetryAggregator::key_of(std::string_view name,
                                        const Labels& labels) {
  std::string key(name);
  for (const auto& [k, v] : labels) {
    key += '\x1f';
    key += k;
    key += '\x1e';
    key += v;
  }
  return key;
}

TelemetryAggregator::Instrument& TelemetryAggregator::find_or_create(
    const std::string& name, const Labels& labels, MetricKind kind) {
  const std::string key = key_of(name, labels);
  const auto it = index_.find(key);
  if (it != index_.end()) return instruments_[it->second];
  Instrument inst;
  inst.name = name;
  inst.labels = labels;
  inst.kind = kind;
  inst.lanes.assign(config_.ranks, 0.0);
  inst.seen.assign(config_.ranks, false);
  if (kind == MetricKind::kHistogram) {
    inst.lane_hists.assign(config_.ranks, HistogramSnapshot{});
  }
  index_[key] = instruments_.size();
  instruments_.push_back(std::move(inst));
  return instruments_.back();
}

void TelemetryAggregator::ingest(const TelemetryDelta& delta) {
  if (delta.rank >= config_.ranks) return;
  if (delta.seq > 0) {
    if (delta.seq > last_seq_[delta.rank] + 1) {
      lost_ += delta.seq - last_seq_[delta.rank] - 1;
    }
    last_seq_[delta.rank] = std::max(last_seq_[delta.rank], delta.seq);
  }
  for (const TelemetryUpdate& u : delta.updates) {
    Instrument& inst = find_or_create(u.name, u.labels, u.kind);
    if (inst.kind != u.kind) continue;  // conflicting kinds never merge
    switch (u.kind) {
      case MetricKind::kCounter:
        inst.lanes[delta.rank] += u.delta;
        inst.total += u.delta;
        break;
      case MetricKind::kGauge:
        inst.lanes[delta.rank] = u.value;
        break;
      case MetricKind::kHistogram: {
        HistogramSnapshot& lane = inst.lane_hists[delta.rank];
        lane.sum += u.hist.sum;
        lane.count += u.hist.count;
        // Cumulative extrema: min only ever decreases, max only ever
        // increases at the source, so the latest shipped value is exact.
        lane.min = u.hist.min;
        lane.max = u.hist.max;
        for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
          lane.buckets[i] += u.hist.buckets[i];
        }
        inst.total += static_cast<double>(u.hist.count);
        break;
      }
    }
    inst.seen[delta.rank] = true;
    inst.dirty = true;
    ++updates_;
  }
  ++deltas_;
  bytes_ += delta.encoded_bytes();
  last_time_s_ = std::max(last_time_s_, delta.time_s);
}

void TelemetryAggregator::commit(double time_s) {
  for (Instrument& inst : instruments_) {
    if (!inst.dirty) continue;
    inst.dirty = false;
    double value = 0.0;
    switch (inst.kind) {
      case MetricKind::kCounter:
      case MetricKind::kHistogram:
        value = inst.total;
        break;
      case MetricKind::kGauge:
        value = lane_stats(inst).median;
        break;
    }
    inst.ring.push_back({time_s, value});
    while (inst.ring.size() > config_.ring_capacity) {
      inst.ring.pop_front();
      ++inst.ring_evicted;
    }
  }
  last_time_s_ = std::max(last_time_s_, time_s);
}

const TelemetryAggregator::Instrument* TelemetryAggregator::find(
    std::string_view name, const Labels& labels) const {
  const auto it = index_.find(key_of(name, labels));
  return it == index_.end() ? nullptr : &instruments_[it->second];
}

std::vector<const TelemetryAggregator::Instrument*>
TelemetryAggregator::instruments() const {
  std::vector<const Instrument*> out;
  out.reserve(instruments_.size());
  for (const Instrument& inst : instruments_) out.push_back(&inst);
  return out;
}

double TelemetryAggregator::counter_total(std::string_view name) const {
  const Instrument* inst = find(name);
  return inst != nullptr ? inst->total : 0.0;
}

double TelemetryAggregator::lane(std::string_view name, std::size_t rank,
                                 double fallback) const {
  const Instrument* inst = find(name);
  if (inst == nullptr || rank >= inst->lanes.size() || !inst->seen[rank]) {
    return fallback;
  }
  return inst->lanes[rank];
}

TelemetryAggregator::GaugeStats TelemetryAggregator::gauge_stats(
    std::string_view name) const {
  const Instrument* inst = find(name);
  return inst != nullptr ? lane_stats(*inst) : GaugeStats{};
}

}  // namespace mh::obs
