// Online anomaly detection and alerting over the telemetry rollup — the
// detector half of the live health plane (telemetry.hpp is the transport
// and state half).
//
// A HealthMonitor evaluates typed rules against a TelemetryAggregator once
// per tick. Every (rule, rank) cell runs the same hysteresis machine:
//
//   inactive --condition true for `for_ticks`--> firing
//   firing --condition false for `resolve_ticks`--> resolved (inactive)
//
// so a one-tick blip neither fires nor resolves anything (debounce), and
// the emitted AlertEvents are exactly the state *transitions* — which is
// what makes the clustersim scenarios assertable: on the simulated clock
// the churn drill must produce the literal sequence rank-death firing →
// replication-below-R firing → resolved after repair, every run.
//
// Alerts land three ways: AlertEvents (returned + kept in history),
// `mh_alert_fired_total` / `mh_alert_resolved_total` counters, and — when
// a TraceSession is attached — one span per firing interval on a
// "health/alerts" track, so an alert is visible in the same merged Chrome
// trace as the work it flags.
//
// HealthPlane bundles aggregator + monitor + a periodically rewritten live
// dashboard JSON (MH_DASHBOARD=path, rendered by tools/mh_health) behind
// one mutex, so the World transport can drive it from the aggregator
// rank's thread while readers poll from outside.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "obs/telemetry.hpp"

namespace mh::obs {

class MetricsRegistry;
class TraceSession;

/// Cluster-wide alerts (no single culprit rank) carry this rank.
inline constexpr std::size_t kClusterRank = static_cast<std::size_t>(-1);

struct AlertRule {
  enum class Kind {
    /// A rank's queue depth is >= `threshold` x the cluster median (and
    /// non-trivial): the live counterpart of the post-hoc straggler
    /// ranking in mh_trace_analyze. Instrument: per-rank gauge lanes.
    kStraggler,
    /// A rank's liveness lane dropped below 0.5. Instrument: gauge.
    kRankDead,
    /// A rank's send-retry counter grew by >= `threshold` in one tick —
    /// the imminent-rank-death smoke before the dead-rank declaration.
    /// Instrument: per-rank counter lanes (rate per tick).
    kSendRetryStorm,
    /// The minimum replica count across live entries fell below
    /// `threshold` (R): one more failure may lose data. Cluster-wide.
    kReplicationLow,
    /// A GPU circuit breaker is open (gauge lane >= `threshold`).
    kBreakerOpen,
    /// Steals are mostly denied: denied / requested >= `threshold` over a
    /// tick, with at least `kStealThrashMinRequests` requests.
    kStealThrash,
    /// A tenant is burning its latency SLO: the serving layer publishes
    /// each tenant's burn rate (fraction of requests over deadline in the
    /// last window, lane index = tenant) and this fires when a lane is
    /// >= `threshold`. Instrument: per-rank gauge lanes
    /// (mh_serve_slo_burn by convention; see serve_rules()).
    kSloBurn,
  };

  Kind kind = Kind::kStraggler;
  /// Stable rule name: alert labels, dashboard keys, span names.
  std::string name;
  /// The instrument evaluated; defaults per kind (see default_rules).
  std::string instrument;
  /// Companion instrument (kStealThrash: the request counter).
  std::string instrument_b;
  double threshold = 0.0;
  /// Consecutive true ticks before firing (>= 1).
  std::size_t for_ticks = 1;
  /// Consecutive false ticks before a firing alert resolves (>= 1).
  std::size_t resolve_ticks = 1;
};

inline constexpr double kStealThrashMinRequests = 4.0;

/// The standard rule set over the well-known instrument names published by
/// World, the clustersim steal loop, and the churn scenario. `replication`
/// parameterises the replication-below-R threshold.
std::vector<AlertRule> default_rules(double replication = 2.0);

enum class AlertState : std::uint8_t {
  kInactive,
  kPending,   ///< condition true, debounce not yet elapsed
  kFiring,
  kResolved,  ///< transition only; the cell returns to inactive
};

std::string_view alert_state_name(AlertState state) noexcept;

/// One state transition (fired or resolved).
struct AlertEvent {
  std::string rule;
  AlertState state = AlertState::kFiring;
  std::size_t rank = kClusterRank;
  double value = 0.0;      ///< observed value at the transition
  double threshold = 0.0;
  double time_s = 0.0;
  std::uint64_t tick = 0;
};

class HealthMonitor {
 public:
  struct Config {
    std::vector<AlertRule> rules;  ///< empty -> default_rules()
    /// Alert counters land here when set.
    MetricsRegistry* registry = nullptr;
    /// Firing intervals land here as kOther spans when set.
    TraceSession* trace = nullptr;
    /// Events kept in history() (bounded like the telemetry rings).
    std::size_t history_capacity = 256;
  };

  explicit HealthMonitor(Config config);

  /// Run one detector tick against the rollup; returns the transitions.
  std::vector<AlertEvent> evaluate(const TelemetryAggregator& agg,
                                   double time_s);

  /// A currently pending or firing (rule, rank) cell.
  struct ActiveAlert {
    std::string rule;
    std::size_t rank = kClusterRank;
    AlertState state = AlertState::kPending;
    double value = 0.0;
    double threshold = 0.0;
    double since_s = 0.0;  ///< first tick time of the current episode
  };

  std::vector<ActiveAlert> active() const;
  const std::vector<AlertEvent>& history() const { return history_; }
  std::uint64_t ticks() const { return ticks_; }
  std::uint64_t events_dropped() const { return events_dropped_; }
  const std::vector<AlertRule>& rules() const { return rules_; }

 private:
  struct Cell {
    std::size_t true_ticks = 0;
    std::size_t false_ticks = 0;
    bool firing = false;
    double value = 0.0;
    double since_s = 0.0;
    double fired_s = 0.0;
  };

  // The per-rank condition, or the cluster-wide one under kClusterRank.
  bool condition(const AlertRule& rule, const TelemetryAggregator& agg,
                 std::size_t rank, double* value, double* threshold);

  std::vector<AlertRule> rules_;
  MetricsRegistry* registry_;
  TraceSession* trace_;
  std::size_t history_capacity_;
  std::uint32_t alert_track_ = 0;
  // Cell key: (rule index, rank).
  std::map<std::pair<std::size_t, std::size_t>, Cell> cells_;
  // kSendRetryStorm needs a per-tick rate: previous counter lane totals.
  std::map<std::string, std::vector<double>> prev_lanes_;
  std::vector<AlertEvent> history_;
  std::uint64_t ticks_ = 0;
  std::uint64_t events_dropped_ = 0;
};

/// Aggregator + monitor + live dashboard behind one lock: the object a
/// scenario or World installs as its health plane.
class HealthPlane {
 public:
  struct Config {
    std::size_t ranks = 1;
    std::size_t ring_capacity = 128;
    std::vector<AlertRule> rules;  ///< empty -> default_rules()
    /// Rewrite this file after every `dashboard_every`-th tick (and on
    /// destruction) when non-empty. MH_DASHBOARD wires it from the env.
    std::string dashboard_path;
    std::size_t dashboard_every = 1;
    MetricsRegistry* registry = nullptr;
    TraceSession* trace = nullptr;
  };

  explicit HealthPlane(Config config);
  ~HealthPlane();

  HealthPlane(const HealthPlane&) = delete;
  HealthPlane& operator=(const HealthPlane&) = delete;

  /// Fold one rank's delta into the rollup (transport side).
  void ingest(const TelemetryDelta& delta);
  /// Commit rings, run one detector tick, maybe rewrite the dashboard.
  std::vector<AlertEvent> evaluate(double time_s);
  /// ingest() every delta, then evaluate() — the simulated-clock path.
  std::vector<AlertEvent> tick(const std::vector<TelemetryDelta>& deltas,
                               double time_s);

  /// Every transition observed so far (bounded copy).
  std::vector<AlertEvent> alert_history() const;
  std::vector<HealthMonitor::ActiveAlert> active_alerts() const;
  std::uint64_t ticks() const;
  /// Locked accessors for rollup scalars (avoid holding references).
  double counter_total(std::string_view name) const;
  double lane(std::string_view name, std::size_t rank,
              double fallback = 0.0) const;
  TelemetryAggregator::GaugeStats gauge_stats(std::string_view name) const;
  std::uint64_t deltas_ingested() const;
  double bytes_ingested() const;
  std::uint64_t snapshots_lost() const;

  /// The dashboard document (also what write_dashboard puts on disk).
  std::string dashboard_json() const;
  bool write_dashboard(const std::string& path) const;

 private:
  void write_dashboard_locked(std::ostream& os) const;

  Config config_;
  mutable std::mutex mu_;
  TelemetryAggregator aggregator_;
  HealthMonitor monitor_;
  std::uint64_t ticks_since_write_ = 0;
};

/// MH_DASHBOARD=path, or empty when unset.
std::string dashboard_path_from_env();
/// MH_TELEMETRY truthy (anything but empty/"0"/"off") arms the plane in
/// benches and long-running drivers.
bool telemetry_enabled_from_env();

/// Structural validation of a dashboard file (tools/mh_health --check and
/// the CI artifact check): parses, verifies the schema marker, finite
/// numbers, lane/ring bounds, and alert-history consistency (a resolve
/// only after a fire for the same cell).
struct DashboardCheck {
  bool ok = false;
  std::vector<std::string> problems;
  // Summary fields for rendering.
  double time_s = 0.0;
  std::uint64_t ticks = 0;
  std::size_t ranks = 0;
  std::size_t instruments = 0;
  std::size_t firing = 0;    ///< alerts still firing at write time
  std::size_t history = 0;   ///< transitions recorded
};

DashboardCheck check_dashboard_text(const std::string& text);
DashboardCheck check_dashboard_file(const std::string& path);

}  // namespace mh::obs
