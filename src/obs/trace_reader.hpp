// Read back Chrome trace_event JSON written by obs/trace.cpp (single-session
// or merged multi-rank), rebuilding the pieces the critical-path analyzer
// needs: duration spans with their causal identity (mh_id / mh_parent /
// mh_task args), flow events ("s"/"f" pairs carrying mh_from / mh_to), and
// the process/thread name metadata that maps pids back to ranks and clock
// domains. The parser is a small hand-rolled JSON DOM — the repo carries no
// JSON dependency — strict enough to reject malformed files with a useful
// error instead of mis-parsing them.
#pragma once

#include <cstdint>
#include <istream>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/trace.hpp"

namespace mh::obs {

/// One "X" (complete) event read back from a trace file.
struct ReadSpan {
  std::string name;
  std::string cat;  ///< full cat field, e.g. "gpu-kernel,cluster"
  Category category = Category::kOther;  ///< parsed first cat component
  int pid = 0;
  int tid = 0;
  double start_us = 0.0;
  double dur_us = 0.0;
  /// Causal identity (0 = absent): see obs/trace.hpp.
  std::uint64_t id = 0;
  std::uint64_t parent = 0;
  std::uint64_t task = 0;
  std::vector<std::pair<std::string, double>> args;

  double end_us() const noexcept { return start_us + dur_us; }
  bool has_arg(std::string_view key) const;
  double arg(std::string_view key, double fallback = 0.0) const;
};

/// One flow event ("s" start or "f" finish).
struct ReadFlow {
  bool start = false;  ///< true for ph:"s", false for ph:"f"
  std::uint64_t flow_id = 0;
  std::uint64_t from = 0;  ///< producer span id (mh_from arg)
  std::uint64_t to = 0;    ///< consumer span id (mh_to arg)
  int pid = 0;
  int tid = 0;
  double ts_us = 0.0;
};

/// Everything read from one trace file.
struct ReadTrace {
  std::vector<ReadSpan> spans;
  std::vector<ReadFlow> flows;
  std::map<int, std::string> process_names;                 ///< pid -> name
  std::map<std::pair<int, int>, std::string> thread_names;  ///< (pid,tid)
  /// Spans evicted by ring-buffer (flight recorder) sessions before export,
  /// summed over ranks ("mh_dropped_spans" metadata). Non-zero means the
  /// trace is truncated and critical-path attribution is unreliable.
  std::uint64_t dropped_spans = 0;

  /// Causal edges (producer span id -> consumer span id), one per flow
  /// start event.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> edges() const;

  /// True when the pid's process name marks it as simulated-time.
  bool pid_is_sim(int pid) const;
};

/// Parse a Chrome trace. Returns false and fills `error` (if non-null) on
/// malformed JSON or a missing traceEvents array.
bool read_chrome_trace(std::istream& is, ReadTrace* out,
                       std::string* error = nullptr);
bool read_chrome_trace_file(const std::string& path, ReadTrace* out,
                            std::string* error = nullptr);

}  // namespace mh::obs
