#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace mh::obs::json {

const JsonValue* JsonValue::find(std::string_view key) const {
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

double JsonValue::num(std::string_view key, double fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->kind == Kind::kNumber ? v->number : fallback;
}

std::string_view JsonValue::text(std::string_view key) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->kind == Kind::kString ? std::string_view(v->str)
                                                  : std::string_view();
}

bool JsonParser::parse(JsonValue* out, std::string* error) {
  bool ok = value(*out);
  skip_ws();
  if (ok && pos_ != in_.size()) {
    ok = fail("trailing data after JSON value");
  }
  if (!ok && error != nullptr) *error = error_;
  return ok;
}

bool JsonParser::fail(const std::string& what) {
  if (error_.empty()) {
    error_ = what + " at byte " + std::to_string(pos_);
  }
  return false;
}

void JsonParser::skip_ws() {
  while (pos_ < in_.size() &&
         (in_[pos_] == ' ' || in_[pos_] == '\t' || in_[pos_] == '\n' ||
          in_[pos_] == '\r')) {
    ++pos_;
  }
}

bool JsonParser::consume(char c) {
  skip_ws();
  if (pos_ < in_.size() && in_[pos_] == c) {
    ++pos_;
    return true;
  }
  return false;
}

bool JsonParser::literal(std::string_view word) {
  if (in_.substr(pos_, word.size()) == word) {
    pos_ += word.size();
    return true;
  }
  return fail("bad literal");
}

bool JsonParser::value(JsonValue& out) {
  skip_ws();
  if (pos_ >= in_.size()) return fail("unexpected end of input");
  switch (in_[pos_]) {
    case '{': return object(out);
    case '[': return array(out);
    case '"':
      out.kind = JsonValue::Kind::kString;
      return string(out.str);
    case 't':
      out.kind = JsonValue::Kind::kBool;
      out.boolean = true;
      return literal("true");
    case 'f':
      out.kind = JsonValue::Kind::kBool;
      out.boolean = false;
      return literal("false");
    case 'n':
      out.kind = JsonValue::Kind::kNull;
      return literal("null");
    default: return number(out);
  }
}

bool JsonParser::object(JsonValue& out) {
  out.kind = JsonValue::Kind::kObject;
  if (!consume('{')) return fail("expected '{'");
  if (consume('}')) return true;
  while (true) {
    skip_ws();
    std::string key;
    if (pos_ >= in_.size() || in_[pos_] != '"' || !string(key)) {
      return fail("expected object key");
    }
    if (!consume(':')) return fail("expected ':'");
    JsonValue v;
    if (!value(v)) return false;
    out.object.emplace_back(std::move(key), std::move(v));
    if (consume(',')) continue;
    if (consume('}')) return true;
    return fail("expected ',' or '}'");
  }
}

bool JsonParser::array(JsonValue& out) {
  out.kind = JsonValue::Kind::kArray;
  if (!consume('[')) return fail("expected '['");
  if (consume(']')) return true;
  while (true) {
    JsonValue v;
    if (!value(v)) return false;
    out.array.push_back(std::move(v));
    if (consume(',')) continue;
    if (consume(']')) return true;
    return fail("expected ',' or ']'");
  }
}

bool JsonParser::string(std::string& out) {
  if (pos_ >= in_.size() || in_[pos_] != '"') return fail("expected string");
  ++pos_;
  out.clear();
  while (pos_ < in_.size()) {
    const char c = in_[pos_++];
    if (c == '"') return true;
    if (static_cast<unsigned char>(c) < 0x20) {
      return fail("unescaped control character in string");
    }
    if (c != '\\') {
      out.push_back(c);
      continue;
    }
    if (pos_ >= in_.size()) break;
    const char esc = in_[pos_++];
    switch (esc) {
      case '"': out.push_back('"'); break;
      case '\\': out.push_back('\\'); break;
      case '/': out.push_back('/'); break;
      case 'b': out.push_back('\b'); break;
      case 'f': out.push_back('\f'); break;
      case 'n': out.push_back('\n'); break;
      case 'r': out.push_back('\r'); break;
      case 't': out.push_back('\t'); break;
      case 'u': {
        if (pos_ + 4 > in_.size()) return fail("truncated \\u escape");
        unsigned code = 0;
        for (int i = 0; i < 4; ++i) {
          const char h = in_[pos_++];
          code <<= 4;
          if (h >= '0' && h <= '9') {
            code |= static_cast<unsigned>(h - '0');
          } else if (h >= 'a' && h <= 'f') {
            code |= static_cast<unsigned>(h - 'a' + 10);
          } else if (h >= 'A' && h <= 'F') {
            code |= static_cast<unsigned>(h - 'A' + 10);
          } else {
            return fail("bad \\u escape");
          }
        }
        // Our writers only emit \u00xx for control bytes; encode the
        // general case as UTF-8 anyway.
        if (code < 0x80) {
          out.push_back(static_cast<char>(code));
        } else if (code < 0x800) {
          out.push_back(static_cast<char>(0xC0 | (code >> 6)));
          out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        } else {
          out.push_back(static_cast<char>(0xE0 | (code >> 12)));
          out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
          out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        }
        break;
      }
      default: return fail("bad escape");
    }
  }
  return fail("unterminated string");
}

bool JsonParser::number(JsonValue& out) {
  const std::size_t start = pos_;
  if (pos_ < in_.size() && in_[pos_] == '-') ++pos_;
  while (pos_ < in_.size() &&
         (std::isdigit(static_cast<unsigned char>(in_[pos_])) != 0 ||
          in_[pos_] == '.' || in_[pos_] == 'e' || in_[pos_] == 'E' ||
          in_[pos_] == '+' || in_[pos_] == '-')) {
    ++pos_;
  }
  if (pos_ == start) return fail("expected number");
  const std::string token(in_.substr(start, pos_ - start));
  char* end = nullptr;
  out.kind = JsonValue::Kind::kNumber;
  out.number = std::strtod(token.c_str(), &end);
  if (end == nullptr || *end != '\0' || !std::isfinite(out.number)) {
    return fail("bad number");
  }
  return true;
}

bool parse(std::string_view text, JsonValue* out, std::string* error) {
  return JsonParser(text).parse(out, error);
}

void write_escaped(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace mh::obs::json
