// Minimal shared JSON DOM + strict parser.
//
// Grown out of the trace reader's private parser once the health plane
// needed to load dashboard files with the same code that validates them in
// CI (tools/mh_health --check). Numbers are doubles — nothing we serialize
// needs more than 2^53 integer precision — and non-finite numbers are
// rejected on input, which is what makes the bench/dashboard validators
// able to promise "every value in this file is finite".
#pragma once

#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mh::obs::json {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* find(std::string_view key) const;
  /// Value of a numeric member, or `fallback` when absent / not a number.
  double num(std::string_view key, double fallback = 0.0) const;
  /// Value of a string member, or empty when absent / not a string.
  std::string_view text(std::string_view key) const;
};

/// Strict single-document parser: rejects trailing data, unescaped control
/// characters, and non-finite numbers.
class JsonParser {
 public:
  explicit JsonParser(std::string_view input) : in_(input) {}

  bool parse(JsonValue* out, std::string* error);

 private:
  bool fail(const std::string& what);
  void skip_ws();
  bool consume(char c);
  bool literal(std::string_view word);
  bool value(JsonValue& out);
  bool object(JsonValue& out);
  bool array(JsonValue& out);
  bool string(std::string& out);
  bool number(JsonValue& out);

  std::string_view in_;
  std::size_t pos_ = 0;
  std::string error_;
};

/// Parse a whole document. Returns false and fills `error` on failure.
bool parse(std::string_view text, JsonValue* out, std::string* error);

/// Escape and double-quote `s` as a JSON string.
void write_escaped(std::ostream& os, std::string_view s);

}  // namespace mh::obs::json
