// Process-wide metrics registry — the steady-state counterpart of the span
// tracing in trace.hpp.
//
// Spans answer "where did this interval go"; the paper's headline claims
// (the k* = n/(m+n) hybrid split, batch-aggregation efficiency, page-lock
// amortisation, §II-A / Fig. 3) are *rates and levels*: pending batch
// depth, flushes per reason, live split fraction, stream occupancy, cache
// hit rate. Those live here as three instrument kinds:
//
//   Counter   — monotonically increasing (batches dispatched, bytes moved);
//   Gauge     — a level sampled in place (queue depth, split fraction);
//   Histogram — log-bucketed distribution (batch sizes, task durations).
//               The power-of-two bucketing is the one TraceSession::hist
//               used; it is promoted here so both layers share it.
//
// Instruments are registered once (mutex) and updated lock-free (relaxed
// atomics) — an update is one atomic RMW, cheap enough to leave always on.
// Handles returned by the registry are stable for the registry's lifetime;
// hot paths cache them. A background Sampler (sampler.hpp) periodically
// copies runtime levels into gauges; exporters (export.hpp) serialize a
// snapshot as Prometheus text exposition or JSON.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/stats.hpp"

namespace mh::obs {

// The log-bucketed histogram geometry (bucket index = frexp exponent + 31,
// range 2^-31 .. 2^32) lives in common/stats.hpp so benches and the serving
// layer can summarize open-loop latency streams without this registry; the
// names are re-exported here because every obs consumer spells them
// obs::HistogramSnapshot / obs::merge.
using mh::kHistogramBuckets;
using mh::log_bucket_index;
using mh::log_bucket_upper;
using mh::HistogramSnapshot;
using mh::merge;

/// Relaxed add for atomic<double> (fetch_add on double is C++20-optional).
inline void atomic_add(std::atomic<double>& a, double delta) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + delta,
                                  std::memory_order_relaxed)) {
  }
}

/// Monotonically increasing value. inc() is one relaxed RMW.
class Counter {
 public:
  void inc(double delta = 1.0) noexcept { atomic_add(v_, delta); }
  double value() const noexcept { return v_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Counter() = default;
  std::atomic<double> v_{0.0};
};

/// A level that can move both ways; set() overwrites, add() adjusts.
class Gauge {
 public:
  void set(double value) noexcept {
    v_.store(value, std::memory_order_relaxed);
  }
  void add(double delta) noexcept { atomic_add(v_, delta); }
  double value() const noexcept { return v_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Gauge() = default;
  std::atomic<double> v_{0.0};
};

/// Log-bucketed distribution; observe() is a handful of relaxed RMWs.
class Histogram {
 public:
  void observe(double value) noexcept;
  HistogramSnapshot snapshot() const noexcept;

 private:
  friend class MetricsRegistry;
  Histogram() = default;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  // ±inf sentinels keep the min/max CAS loops branch-free on first use;
  // snapshot() maps them back to 0 while count is still 0.
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
  std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets_{};
};

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

/// Prometheus-style labels: ordered key/value pairs. Two instruments with
/// the same name but different labels are distinct time series.
using Labels = std::vector<std::pair<std::string, std::string>>;

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Register (or look up) an instrument. Takes a mutex — call once and
  /// cache the reference; the handle stays valid for the registry's
  /// lifetime. Re-registering the same (name, labels) returns the same
  /// instrument; registering the same name with a different kind throws.
  Counter& counter(std::string_view name, std::string_view help = {},
                   Labels labels = {});
  Gauge& gauge(std::string_view name, std::string_view help = {},
               Labels labels = {});
  Histogram& histogram(std::string_view name, std::string_view help = {},
                       Labels labels = {});

  /// One serialized time series, as the exporters consume it.
  struct Sample {
    std::string name;
    std::string help;
    MetricKind kind = MetricKind::kCounter;
    Labels labels;
    double value = 0.0;         ///< counters and gauges
    HistogramSnapshot hist;     ///< histograms
  };

  /// Consistent-enough snapshot of every instrument, in registration order
  /// (each value is one atomic load; the set of instruments is locked).
  std::vector<Sample> snapshot() const;

  std::size_t size() const;

  /// The process-wide registry the runtime layers default to.
  static MetricsRegistry& global() noexcept;

 private:
  struct Entry {
    std::string name;
    std::string help;
    MetricKind kind;
    Labels labels;
    // Exactly one is non-null, matching kind.
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& find_or_create(std::string_view name, std::string_view help,
                        Labels&& labels, MetricKind kind);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Entry>> entries_;
};

}  // namespace mh::obs
