// Critical-path and overlap-model analysis over a trace read back from disk
// (obs/trace_reader.hpp).
//
// The analyzer rebuilds the causal task DAG from a Chrome trace written by
// this repo's exporter — parent links and explicit flow edges between span
// ids, plus resource (same-track) ordering — and answers the questions the
// raw timeline cannot:
//
//   - critical path: walking backward from the span that ends last, which
//     chain of spans and queue-wait gaps explains the makespan? The walk
//     attributes every microsecond of [origin, makespan] either to a span's
//     phase category or to "wait", so the attribution telescopes to the
//     measured makespan exactly.
//   - overlap model (the paper's hybrid-dispatch math): per hybrid batch,
//     compare the measured batch makespan against max(m_frac, n_frac) and
//     the ideal m·n/(m+n), where m / n are the full-batch CPU-only /
//     GPU-only times taken from the probe span the cluster simulator emits
//     (falling back to scaling the measured sides). The summary scalars —
//     overlap efficiency (ideal / measured) and split residual (live k −
//     k*) — are what bench_breakdown / bench_weak_scaling gate in CI.
#pragma once

#include <array>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "obs/trace_reader.hpp"

namespace mh::obs {

/// Time attributed per phase along the critical path. `category_us` indexes
/// by Category; `wait_us` holds the gaps (queue wait / dependency stalls)
/// between consecutive critical spans. total_us() telescopes to the
/// analyzed makespan by construction.
struct Attribution {
  std::array<double, kCategoryCount> category_us{};
  double wait_us = 0.0;

  double operator[](Category cat) const noexcept {
    return category_us[static_cast<std::size_t>(cat)];
  }
  double total_us() const noexcept {
    double t = wait_us;
    for (const double us : category_us) t += us;
    return t;
  }
};

/// One step of the critical path (latest first, as walked).
struct CriticalStep {
  std::size_t span_index = 0;  ///< into the analyzed ReadTrace::spans
  double portion_us = 0.0;     ///< slice of the span on the critical path
};

/// Per-batch overlap-model comparison (hybrid batches only).
struct BatchOverlap {
  std::uint64_t task = 0;    ///< batch task id (mh_task)
  double items = 0.0;        ///< batch size
  double ncpu = 0.0;         ///< items sent to the CPU side
  double measured_us = 0.0;  ///< measured batch makespan (full extent)
  double overlap_us = 0.0;   ///< compute-window extent: CPU compute in
                             ///< parallel with the GPU transfer+kernel
                             ///< chain, excluding the serial pre/dispatch/
                             ///< post phases the model's m and n omit
  double cpu_us = 0.0;       ///< CPU-side span time
  double gpu_us = 0.0;       ///< GPU-chain extent
  double m_us = 0.0;         ///< full-batch CPU-only time (model's m)
  double n_us = 0.0;         ///< full-batch GPU-only time (model's n)
  double bound_us = 0.0;     ///< max(m_frac, n_frac) for the live split
  double ideal_us = 0.0;     ///< m·n/(m+n)
  double split = 0.0;        ///< live CPU fraction k = ncpu/items
  double kstar = 0.0;        ///< optimal fraction k* = n/(m+n)
  double efficiency = 0.0;   ///< ideal_us / overlap_us
};

/// Max finish time per track — straggler ranking for merged cluster runs.
struct TrackFinish {
  std::string name;  ///< "<process> / <thread>" qualified track name
  double finish_us = 0.0;
  double busy_us = 0.0;  ///< summed span time on the track
};

struct TraceAnalysis {
  bool sim_domain = false;  ///< analyzed the simulated-time pids (else wall)
  double origin_us = 0.0;
  double end_us = 0.0;
  double makespan_us() const noexcept { return end_us - origin_us; }

  Attribution critical;             ///< sums to makespan_us()
  std::vector<CriticalStep> path;   ///< latest step first
  std::vector<BatchOverlap> batches;
  std::vector<TrackFinish> stragglers;  ///< slowest track first

  std::size_t connected_components = 0;  ///< of the causal DAG (ids+task)
  std::size_t causal_spans = 0;          ///< spans carrying an mh_id

  // Aggregates over hybrid batches (item-weighted); 0 when none were found.
  double overlap_efficiency = 0.0;
  double split_residual = 0.0;       ///< mean signed (k - k*)
  double split_residual_abs = 0.0;   ///< mean |k - k*|
};

/// Analyze a trace: prefers the simulated-time clock domain when present
/// (deterministic), otherwise the wall domain.
TraceAnalysis analyze_trace(const ReadTrace& trace);

/// Human-readable report (the mh_trace_analyze CLI output).
void write_analysis(std::ostream& os, const ReadTrace& trace,
                    const TraceAnalysis& a);

}  // namespace mh::obs
