// Cluster-level simulation of a MADNESS Apply run (paper §III).
//
// Each node owns the tasks its process map assigned; within a node the run
// proceeds in batches of `batch_size` compute tasks flowing through the
// CPU-only, GPU-only, or hybrid path. The cluster makespan is the slowest
// node plus its communication, mirroring static load balancing: there is no
// work stealing (the paper's scaling limits come precisely from that).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "clustersim/cpu_model.hpp"
#include "clustersim/process_map.hpp"
#include "clustersim/workload.hpp"
#include "common/sim_time.hpp"
#include "gpusim/gpu_executor.hpp"
#include "obs/trace.hpp"

namespace mh::cluster {

struct NodeSpec {
  CpuSpec cpu = CpuSpec::titan_interlagos();
  gpu::DeviceSpec device = gpu::DeviceSpec::tesla_m2090();
  std::size_t gpu_streams = 6;

  /// A Titan XK6/XK7-style node: 16-core Interlagos + Tesla M2090.
  static NodeSpec titan() { return NodeSpec{}; }
};

enum class ComputeMode { kCpuOnly, kGpuOnly, kHybrid };

struct ClusterConfig {
  std::size_t nodes = 1;
  NodeSpec node;
  ComputeMode mode = ComputeMode::kHybrid;
  /// Worker threads for CPU compute (paper: 16 CPU-only; 15 in hybrid, one
  /// core driving the GPU as dispatcher).
  std::size_t cpu_compute_threads = 16;
  std::size_t batch_size = 60;
  bool rank_reduce = false;
  double rank_fraction = 1.0;  ///< kred/k flop scale when rank_reduce is on
  /// Hybrid split: fraction of each batch on the CPU; < 0 derives the
  /// optimal k* = n/(m+n) from the model's own rates (probe batch).
  double cpu_fraction = -1.0;
  gpu::BatchConfig gpu;  ///< kernel choice, streams etc. (streams overridden
                         ///< by node.gpu_streams)
  // Interconnect (Gemini-class; the paper reports no network bottleneck).
  double interconnect_bandwidth = 5e9;
  SimTime message_latency = SimTime::micros(2.0);

  /// Simulated-time span sink: per-node phase spans land on
  /// "node<i>/phases" tracks and device events on "node<i>/gpu/..."
  /// stream tracks. nullptr falls back to obs::TraceSession::current()
  /// (still off if that is null too). Non-owning.
  obs::TraceSession* trace = nullptr;

  /// Per-rank sessions: when non-empty, node i records into
  /// node_traces[i % size()] instead of `trace` — one TraceSession per
  /// simulated rank, stitched afterwards with
  /// obs::write_merged_chrome_trace. Non-owning.
  std::vector<obs::TraceSession*> node_traces;
};

/// Where one node's wall time went (aggregated over its batches).
struct NodeBreakdown {
  SimTime cpu_compute;  ///< CPU worker compute (CPU-only & hybrid CPU share)
  SimTime host_data;    ///< preprocess + postprocess on data threads
  SimTime dispatch;     ///< dispatcher thread: staging + pointer tables
  SimTime transfers;    ///< PCIe in + out
  SimTime gpu_kernels;  ///< device kernel span
  SimTime comm;         ///< remote accumulations

  SimTime total() const noexcept {
    return cpu_compute + host_data + dispatch + transfers + gpu_kernels +
           comm;
  }
};

struct ClusterResult {
  bool feasible = true;
  std::string note;  ///< set when infeasible (e.g. exceeds GPU RAM)
  SimTime makespan;
  double load_imbalance = 1.0;
  SimTime slowest_node_compute;
  SimTime slowest_node_comm;
  NodeBreakdown slowest_breakdown;  ///< phase profile of the slowest node
  std::vector<SimTime> node_times;
};

/// Simulate the run given per-node task loads (from a process map).
ClusterResult run_cluster_apply(const Workload& workload,
                                const NodeLoads& loads,
                                const ClusterConfig& config);

/// Time of one node processing `tasks` tasks under `config` (exposed for
/// single-node benches: Tables I and II). `breakdown`, when non-null,
/// receives the phase profile. `node_track` names the node's trace tracks
/// when a trace session is attached. `last_span`, when non-null, receives
/// the id of the node's final causal span (0 if untraced) so follow-up
/// spans — the comm tail in run_cluster_apply — can chain to it.
SimTime node_run_time(const Workload& workload, std::size_t tasks,
                      const ClusterConfig& config,
                      NodeBreakdown* breakdown = nullptr,
                      const std::string& node_track = "node0",
                      std::uint64_t* last_span = nullptr);

}  // namespace mh::cluster
