// Cluster-level simulation of a MADNESS Apply run (paper §III).
//
// Each node owns the tasks its process map assigned; within a node the run
// proceeds in batches of `batch_size` compute tasks flowing through the
// CPU-only, GPU-only, or hybrid path. Two schedulers are provided:
//
//   run_cluster_apply          — static load balancing: the cluster makespan
//                                is the slowest node plus its communication,
//                                mirroring the paper (its scaling limits
//                                come precisely from that).
//   run_cluster_apply_stealing — extension beyond the paper: idle nodes
//                                migrate whole subtree groups off
//                                stragglers, paying the steal round trip
//                                and the coefficient migration in simulated
//                                time, optionally biased by the DHT owner
//                                map so coefficient reuse stays local.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "clustersim/cpu_model.hpp"
#include "clustersim/process_map.hpp"
#include "clustersim/workload.hpp"
#include "common/sim_time.hpp"
#include "gpusim/gpu_executor.hpp"
#include "obs/trace.hpp"

namespace mh::obs {
class HealthPlane;
}

namespace mh::cluster {

struct NodeSpec {
  CpuSpec cpu = CpuSpec::titan_interlagos();
  gpu::DeviceSpec device = gpu::DeviceSpec::tesla_m2090();
  std::size_t gpu_streams = 6;

  /// A Titan XK6/XK7-style node: 16-core Interlagos + Tesla M2090.
  static NodeSpec titan() { return NodeSpec{}; }
};

enum class ComputeMode { kCpuOnly, kGpuOnly, kHybrid };

struct ClusterConfig {
  std::size_t nodes = 1;
  NodeSpec node;
  ComputeMode mode = ComputeMode::kHybrid;
  /// Worker threads for CPU compute (paper: 16 CPU-only; 15 in hybrid, one
  /// core driving the GPU as dispatcher).
  std::size_t cpu_compute_threads = 16;
  std::size_t batch_size = 60;
  bool rank_reduce = false;
  double rank_fraction = 1.0;  ///< kred/k flop scale when rank_reduce is on
  /// Hybrid split: fraction of each batch on the CPU; < 0 derives the
  /// optimal k* = n/(m+n) from the model's own rates (probe batch).
  double cpu_fraction = -1.0;
  gpu::BatchConfig gpu;  ///< kernel choice, streams etc. (streams overridden
                         ///< by node.gpu_streams)
  // Interconnect (Gemini-class; the paper reports no network bottleneck).
  double interconnect_bandwidth = 5e9;
  SimTime message_latency = SimTime::micros(2.0);

  /// Simulated-time span sink: per-node phase spans land on
  /// "node<i>/phases" tracks and device events on "node<i>/gpu/..."
  /// stream tracks. nullptr falls back to obs::TraceSession::current()
  /// (still off if that is null too). Non-owning.
  obs::TraceSession* trace = nullptr;

  /// Per-rank sessions: when non-empty, node i records into
  /// node_traces[i % size()] instead of `trace` — one TraceSession per
  /// simulated rank, stitched afterwards with
  /// obs::write_merged_chrome_trace. Non-owning.
  std::vector<obs::TraceSession*> node_traces;

  /// Live health plane on the simulated clock: when non-null the
  /// steal-enabled scheduler publishes per-node telemetry (queue depth,
  /// liveness, executed tasks, steal counters) after every executed group
  /// and runs one detector tick, so stragglers are flagged *while* the
  /// simulated run is in flight — not from the trace afterwards.
  /// Non-owning.
  obs::HealthPlane* health = nullptr;
};

/// Where one node's wall time went (aggregated over its batches).
struct NodeBreakdown {
  SimTime cpu_compute;  ///< CPU worker compute (CPU-only & hybrid CPU share)
  SimTime host_data;    ///< preprocess + postprocess on data threads
  SimTime dispatch;     ///< dispatcher thread: staging + pointer tables
  SimTime transfers;    ///< PCIe in + out
  SimTime gpu_kernels;  ///< device kernel span
  SimTime comm;         ///< remote accumulations (and steal migrations)

  SimTime total() const noexcept {
    return cpu_compute + host_data + dispatch + transfers + gpu_kernels +
           comm;
  }
};

struct ClusterResult {
  bool feasible = true;
  /// True when the schedule contained no tasks at all: makespan 0 and
  /// load_imbalance 1.0 then mean "nothing ran", not "perfectly balanced"
  /// — bench sweeps must not gate on an empty schedule.
  bool empty = false;
  std::string note;  ///< set when infeasible or empty
  SimTime makespan;
  double load_imbalance = 1.0;
  SimTime slowest_node_compute;
  SimTime slowest_node_comm;
  NodeBreakdown slowest_breakdown;  ///< phase profile of the slowest node
  std::vector<SimTime> node_times;
};

/// Simulate the run given per-node task loads (from a process map).
ClusterResult run_cluster_apply(const Workload& workload,
                                const NodeLoads& loads,
                                const ClusterConfig& config);

/// Time of one node processing `tasks` tasks under `config` (exposed for
/// single-node benches: Tables I and II); returns the elapsed duration.
/// `breakdown`, when non-null, receives the phase profile. `node_track`
/// names the node's trace tracks when a trace session is attached.
/// `last_span`, when non-null, receives the id of the node's final causal
/// span (0 if untraced) so follow-up spans — the comm tail in
/// run_cluster_apply — can chain to it. `start` offsets every recorded
/// span on the simulated clock and `chain_from` seeds the causal chain:
/// the steal-enabled scheduler uses both to run one node's groups
/// back-to-back on a single connected per-rank timeline.
SimTime node_run_time(const Workload& workload, std::size_t tasks,
                      const ClusterConfig& config,
                      NodeBreakdown* breakdown = nullptr,
                      const std::string& node_track = "node0",
                      std::uint64_t* last_span = nullptr,
                      SimTime start = SimTime::zero(),
                      std::uint64_t chain_from = 0);

/// Knobs of the steal-enabled scheduler.
struct StealPolicy {
  enum class Victim {
    kRandom,          ///< uniform random victim with queued work
    kLocalityBiased,  ///< prefer groups whose anchor the thief owns
  };
  Victim victim = Victim::kLocalityBiased;
  /// Migration byte fraction charged when the thief already owns the
  /// group's anchor coefficients in the DHT: only task descriptors cross
  /// the wire, the coefficient blocks are already local.
  double owned_bytes_fraction = 0.05;
  /// Hard cap on migrations (0 = 4x the group count) — a determinism
  /// backstop, not a tuning knob.
  std::size_t max_steals = 0;
  std::uint64_t seed = 0x57ea1ULL;

  /// Defaults overridden from the environment: MH_STEAL_VICTIM
  /// ("random" | "locality") and MH_STEAL_OWNED_FRACTION (a fraction in
  /// [0, 1]). Unset or unparsable variables keep the defaults.
  static StealPolicy from_env();
};

struct StealStats {
  std::size_t attempts = 0;      ///< steal requests issued
  std::size_t steals = 0;        ///< granted migrations
  std::size_t owned_steals = 0;  ///< thief already owned the coefficients
  std::size_t migrated_tasks = 0;
  double migrated_bytes = 0.0;
  SimTime migration_time;  ///< summed request + migration cost
};

struct StealScheduleResult {
  ClusterResult result;  ///< load_imbalance is the *achieved* balance
  StealStats steals;
  NodeLoads executed;  ///< tasks actually run per node, post-migration
};

/// Steal-enabled run. Groups start where `placement` put them; whenever a
/// node drains its queue it asks a victim for one whole group, and the
/// migration is granted when the thief finishes the group before the
/// victim would drain its remaining queue — shortening the victim's
/// projected finish — even after paying the request round trip plus the
/// coefficient transfer (group tasks x tensor bytes over
/// `interconnect_bandwidth`, plus latency) on the simulated clock.
/// `group_owner`, when non-empty, gives each group's coefficient home rank
/// (dht::owners_of over the group anchors): the locality-biased policy
/// steals owned groups first and pays only
/// `StealPolicy::owned_bytes_fraction` of the bytes for them. Steal and
/// migration spans land on the thief's "node<i>/phases" track, chained
/// into its causal span chain, so mh_trace_analyze attributes migration
/// cost like any other phase.
StealScheduleResult run_cluster_apply_stealing(
    const Workload& workload, const GroupMap& placement,
    const std::vector<std::size_t>& group_owner, const ClusterConfig& config,
    const StealPolicy& policy = {});

}  // namespace mh::cluster
