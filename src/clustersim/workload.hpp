// Descriptor-level workloads for the cluster simulator.
//
// The table benches replay the paper's applications at their stated scales
// (e.g. 154,468 tasks for the 1e-11 Coulomb run, 542,113 for 4-D TDSE)
// without materializing half a million real coefficient tensors: a Workload
// carries the task shape, counts, operator-block reuse, and the subtree
// group structure that the locality process map distributes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "gpusim/kernels.hpp"

namespace mh::cluster {

struct Workload {
  std::string name;
  gpu::ApplyTaskShape shape;
  std::size_t tasks = 0;
  /// Distinct operator blocks over the whole run (term x level x disp).
  std::size_t unique_h_blocks = 0;
  /// Device-resident bytes per task (input tree share, results, buffers) —
  /// drives the "data per node too large for GPU RAM" feasibility rows.
  double gpu_bytes_per_task = 0.0;
  /// Subtree groups (task counts) distributed by the locality process map.
  std::vector<std::size_t> group_sizes;
  /// Fraction of tasks whose accumulation crosses a node boundary.
  double remote_fraction = 0.15;
};

/// Power-law subtree sizes summing to `tasks`: a few big subtrees and a long
/// tail, like an adaptively refined tree. skew > 0; larger = more uneven.
std::vector<std::size_t> power_law_groups(std::size_t tasks,
                                          std::size_t ngroups, double skew,
                                          std::uint64_t seed);

/// Estimated distinct operator blocks: terms x levels x band 1-D blocks
/// (blocks are shared across dimensions for an isotropic kernel).
std::size_t estimate_unique_blocks(std::size_t terms, std::size_t levels,
                                   std::int64_t max_disp);

/// Assemble a workload descriptor.
Workload make_workload(std::string name, gpu::ApplyTaskShape shape,
                       std::size_t tasks, std::size_t ngroups, double skew,
                       std::uint64_t seed);

}  // namespace mh::cluster
