// Node churn over a distributed Apply: kill and re-add ranks mid-run and
// still produce the bitwise-identical result.
//
// The scenario the elastic-recovery subsystem exists for. A reconstructed
// function is scattered R-way replicated (dht::ElasticFunction) over
// simulated ranks; every Apply task runs on the rank owning its source leaf
// on a discrete-event simulated clock; results land in a replicated
// exactly-once ledger keyed by task id. Scripted churn events fire between
// task executions: a kill drops a rank (its shard, its ledger copies, its
// queued tasks), survivors promote replicas and absorb the orphaned tasks;
// a re-add brings the rank back empty and repair() re-balances onto it.
// When replication cannot cover a loss (R = 1), the run restarts from the
// last checkpoint into a world resized to the survivors.
//
// Bitwise determinism holds by construction, not by luck: each task's
// tensor is a deterministic function of its (source, displacement) alone,
// the ledger deduplicates re-executions, and the final reduction
// accumulates results in ascending task-id order — so the result depends
// only on the task set, never on execution order, churn, or injected
// message faults (dropped replica copies self-heal through repair and a
// final completeness scrub). The churn chaos CI tier asserts exactly this:
// run_churn_apply with kills == run_churn_apply without, to the bit.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/sim_time.hpp"
#include "dht/elastic.hpp"
#include "fault/fault.hpp"
#include "mra/function.hpp"
#include "obs/trace.hpp"
#include "ops/apply.hpp"

namespace mh::obs {
class HealthPlane;
}

namespace mh::cluster {

struct ChurnEvent {
  enum class Kind {
    kKill,  ///< rank dies: shard lost, queue orphaned, survivors recover
    kAdd,   ///< a previously killed rank rejoins empty (repair re-balances)
  };
  Kind kind = Kind::kKill;
  SimTime at;        ///< simulated time the event fires
  std::size_t rank;  ///< target rank (original numbering)
};

struct ChurnConfig {
  std::size_t ranks = 8;
  int subtree_level = 2;     ///< replica co-location level (subtree anchors)
  std::size_t replication = 2;
  std::uint64_t seed = 0;    ///< placement seed (rendezvous orders)
  std::vector<ChurnEvent> events;  ///< chronological churn script
  /// Snapshot the function every N completed tasks (0 = never). The R=1
  /// restart path needs at least one checkpoint to recover a lost shard.
  std::size_t checkpoint_every = 0;
  /// Per-task compute cost on the simulated clock.
  SimTime task_cost = SimTime::micros(50.0);
  // Interconnect model for replica write-through / recovery traffic.
  double interconnect_bandwidth = 5e9;
  SimTime message_latency = SimTime::micros(2.0);
  /// Fault injector consulted per remote ledger copy (site `send`);
  /// nullptr means the process injector configured from MH_FAULTS.
  fault::FaultInjector* faults = nullptr;
  /// Simulated-time span sink for recovery spans; nullptr falls back to
  /// obs::TraceSession::current(). Non-owning.
  obs::TraceSession* trace = nullptr;
  /// Live health plane on the simulated clock: when non-null the scenario
  /// publishes per-rank liveness and queue depth plus the stores' minimum
  /// replica count — once at start, around every churn event (after the
  /// kill degrades the store, again after repair), and every
  /// `telemetry_every` completed tasks — so a kill fires rank-death and
  /// replication-below-R alerts *between* the kill and its repair, and
  /// both resolve on the recovery path. Non-owning.
  obs::HealthPlane* health = nullptr;
  std::size_t telemetry_every = 16;
};

struct ChurnStats {
  std::size_t tasks = 0;        ///< task executions (including re-runs)
  std::size_t kills = 0;
  std::size_t revives = 0;
  std::size_t promoted = 0;     ///< replica copies re-created by repair
  std::size_t dropped_replicas = 0;  ///< surplus copies released by repair
  std::size_t rehomed_tasks = 0;     ///< queued tasks moved off dead ranks
  std::size_t reexecuted_tasks = 0;  ///< re-runs (lost or dropped results)
  std::size_t checkpoints = 0;
  std::size_t restarts = 0;          ///< checkpoint restarts (resized world)
  std::size_t lost_leaves = 0;       ///< leaves that lost every replica
  double recovery_bytes = 0.0;       ///< repair + restart traffic
  SimTime recovery_time;             ///< simulated time spent recovering
  SimTime makespan;
};

struct ChurnResult {
  mra::Function result;
  ChurnStats stats;
};

/// Apply `op` to `f` under the churn script in `config`. The returned
/// function is bitwise-identical for any churn script that completes —
/// including an empty one, which is the fault-free reference. Throws a
/// typed fault::FaultError (kDataLost) when a loss is unrecoverable: every
/// replica of a leaf died and no checkpoint was taken.
ChurnResult run_churn_apply(const ops::SeparatedConvolution& op,
                            const mra::Function& f, const ChurnConfig& config);

}  // namespace mh::cluster
