#include "clustersim/churn.hpp"

#include <algorithm>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <utility>

#include "common/diagnostics.hpp"
#include "common/hash.hpp"
#include "obs/health.hpp"
#include "obs/metrics.hpp"

namespace mh::cluster {
namespace {

constexpr std::size_t kNoRank = std::numeric_limits<std::size_t>::max();
constexpr double kMessageHeaderBytes = 64.0;

/// One entry of the exactly-once result ledger: a task's contribution
/// tensor, addressed to the target key it accumulates into.
struct TaskResult {
  mra::Key target;
  Tensor value;
};

struct TaskIdHash {
  std::size_t operator()(std::uint64_t id) const noexcept {
    return static_cast<std::size_t>(mix64(id + 1));
  }
};

using Ledger = dht::ReplicatedStore<std::uint64_t, TaskResult, TaskIdHash>;

double tensor_bytes(const Tensor& t) {
  return static_cast<double>(t.size()) * 8.0 + kMessageHeaderBytes;
}

}  // namespace

ChurnResult run_churn_apply(const ops::SeparatedConvolution& op,
                            const mra::Function& f,
                            const ChurnConfig& config_in) {
  ChurnConfig config = config_in;
  // MH_TELEMETRY=1 arms an ambient plane on any churn run that didn't
  // install one explicitly; MH_DASHBOARD=path adds the live dashboard
  // file. The plane is an observer on the simulated clock, so arming it
  // from the environment cannot change the run's results.
  std::unique_ptr<obs::HealthPlane> env_plane;
  if (config.health == nullptr && obs::telemetry_enabled_from_env()) {
    obs::HealthPlane::Config env_cfg;
    env_cfg.ranks = config.ranks;
    env_cfg.dashboard_path = obs::dashboard_path_from_env();
    env_plane = std::make_unique<obs::HealthPlane>(env_cfg);
    config.health = env_plane.get();
  }
  MH_CHECK(config.ranks >= 1, "churn run needs at least one rank");
  MH_CHECK(op.params().ndim == f.params().ndim &&
               op.params().k == f.params().k,
           "operator/function parameter mismatch");
  MH_CHECK(std::is_sorted(config.events.begin(), config.events.end(),
                          [](const ChurnEvent& a, const ChurnEvent& b) {
                            return a.at < b.at;
                          }),
           "churn events must be chronological");
  fault::FaultInjector* faults =
      config.faults != nullptr ? config.faults : &fault::FaultInjector::global();
  obs::TraceSession* trace =
      config.trace != nullptr ? config.trace : obs::TraceSession::current();
  std::uint32_t recovery_track = 0;
  if (trace != nullptr) {
    recovery_track = trace->track(obs::ClockDomain::kSim, "churn/recovery");
  }

  // The full task set, fixed up front: task id = index. The result is a
  // pure function of this list, which is what makes churn invisible.
  const std::vector<ops::ApplyTask> tasks = ops::make_apply_tasks(op, f);
  const std::size_t ndim = f.params().ndim;

  ChurnStats stats;
  dht::ElasticFunction ef(f, config.ranks, config.subtree_level,
                          config.replication, config.seed);
  Ledger ledger(config.ranks, config.replication, config.seed,
                [](const std::uint64_t& id) { return mix64(id + 0x9e37u); });

  const double entry_bytes =
      tensor_bytes(Tensor::cube(ndim, f.params().k));
  const auto wire_time = [&config](double bytes, std::size_t messages) {
    return SimTime::seconds(bytes / config.interconnect_bandwidth) +
           config.message_latency * static_cast<double>(messages);
  };

  std::vector<SimTime> clocks(config.ranks);
  // Original rank id -> current store index (restarts compact the world,
  // re-adds may append); kNoRank while the rank is out of the world.
  std::vector<std::size_t> orig_to_cur(config.ranks);
  for (std::size_t r = 0; r < config.ranks; ++r) orig_to_cur[r] = r;

  std::vector<std::vector<std::uint64_t>> queues(config.ranks);
  for (std::uint64_t id = 0; id < tasks.size(); ++id) {
    queues[ef.owner(tasks[id].source)].push_back(id);
  }

  std::string last_checkpoint;
  std::size_t completed = 0;

  // Live health plane: per-rank lanes are keyed by *original* rank ids so
  // a kill/re-add pair flips one lane 1 -> 0 -> 1 even if restarts
  // renumber the world underneath. The minimum replica count is published
  // from the degraded store before repair runs, which is what lets the
  // replication-below-R alert fire inside the kill-to-repair window on
  // the simulated clock.
  std::unique_ptr<obs::ScenarioTelemetry> tel;
  double health_time = 0.0;
  const auto publish_health = [&](SimTime at) {
    if (config.health == nullptr) return;
    for (std::size_t orig = 0; orig < config.ranks; ++orig) {
      const std::size_t cur = orig_to_cur[orig];
      const bool alive =
          cur != kNoRank && cur < queues.size() && ef.store().alive(cur);
      tel->gauge(orig, "mh_rank_alive", alive ? 1.0 : 0.0);
      tel->gauge(orig, "mh_rank_queue_depth",
                 alive ? static_cast<double>(queues[cur].size()) : 0.0);
    }
    tel->gauge(0, "mh_replication_min_copies",
               static_cast<double>(
                   std::min(ef.store().min_copies(), ledger.min_copies())));
    tel->counter(0, "mh_churn_tasks_executed",
                 static_cast<double>(stats.tasks));
    health_time = std::max(health_time, at.sec());
    config.health->tick(tel->collect(health_time), health_time);
  };
  if (config.health != nullptr) {
    tel = std::make_unique<obs::ScenarioTelemetry>(config.ranks);
    publish_health(SimTime::zero());
  }

  const auto run_task = [&](std::size_t rank, std::uint64_t id) {
    if (ledger.contains(id)) return;  // exactly-once: a re-homed duplicate
    const ops::ApplyTask& task = tasks[id];
    const Tensor* source = ef.find(task.source);
    MH_CHECK(source != nullptr, "task source leaf has no live copy");
    Tensor value = ops::apply_task_compute(op, *source, task.source.level(),
                                           task.disp);
    const double bytes = tensor_bytes(value);
    clocks[rank] += config.task_cost;
    const auto holders = ledger.holders(id);
    std::size_t remote = holders.size();
    for (const std::size_t h : holders) remote -= (h == rank) ? 1 : 0;
    clocks[rank] += wire_time(bytes * static_cast<double>(remote), remote);
    ledger.put(rank, id, TaskResult{task.target, std::move(value)}, bytes,
               faults);
    ++stats.tasks;
    ++completed;
  };

  const auto rehome_queues = [&] {
    // Re-derive every queued task's home from the current owner. Collect
    // then redistribute so a mid-loop move is never visited twice.
    std::vector<std::uint64_t> moved;
    for (std::size_t r = 0; r < queues.size(); ++r) {
      std::vector<std::uint64_t> keep;
      for (const std::uint64_t id : queues[r]) {
        if (ef.owner(tasks[id].source) == r) {
          keep.push_back(id);
        } else {
          moved.push_back(id);
        }
      }
      queues[r] = std::move(keep);
    }
    std::sort(moved.begin(), moved.end());
    for (const std::uint64_t id : moved) {
      queues[ef.owner(tasks[id].source)].push_back(id);
    }
    return moved.size();
  };

  const auto take_checkpoint = [&](SimTime at) {
    std::ostringstream os;
    ef.checkpoint(os);
    last_checkpoint = os.str();
    ++stats.checkpoints;
    const SimTime cost =
        wire_time(static_cast<double>(last_checkpoint.size()), 1);
    for (std::size_t r = 0; r < clocks.size(); ++r) {
      if (ef.store().alive(r)) clocks[r] += cost;
    }
    if (trace != nullptr) {
      trace->record_sim(recovery_track, "checkpoint",
                        obs::Category::kRecovery, at, at + cost,
                        {{"bytes",
                          static_cast<double>(last_checkpoint.size())}});
    }
  };

  // Repair both stores after a membership change and charge the survivors
  // the recovery traffic as a collective phase starting at `at`.
  const auto repair_all = [&](SimTime at, const char* why) {
    const dht::RecoveryStats fn_rep = ef.repair();
    const dht::RecoveryStats led_rep = ledger.repair(entry_bytes);
    stats.promoted += fn_rep.copied + led_rep.copied;
    stats.dropped_replicas += fn_rep.dropped + led_rep.dropped;
    const double bytes = fn_rep.bytes + led_rep.bytes;
    const std::size_t messages = fn_rep.messages + led_rep.messages;
    stats.recovery_bytes += bytes;
    const SimTime cost = wire_time(bytes, messages);
    stats.recovery_time += cost;
    for (std::size_t r = 0; r < clocks.size(); ++r) {
      if (!ef.store().alive(r)) continue;
      clocks[r] = max(clocks[r], at) + cost;
    }
    if (trace != nullptr) {
      trace->record_sim(recovery_track, why, obs::Category::kRecovery, at,
                        at + cost, {{"bytes", bytes}});
    }
  };

  // Checkpoint restart: rebuild the function into a world resized to the
  // survivors, carry the surviving ledger entries over, and re-queue every
  // task the ledger does not cover.
  const auto restart_from_checkpoint = [&](SimTime at) {
    ++stats.restarts;
    std::vector<std::size_t> live_cur;
    for (std::size_t r = 0; r < ef.ranks(); ++r) {
      if (ef.store().alive(r)) live_cur.push_back(r);
    }
    MH_CHECK(!live_cur.empty(), "restart with no survivors");
    const std::size_t new_ranks = live_cur.size();

    std::istringstream is(last_checkpoint);
    dht::ElasticFunction restored =
        dht::ElasticFunction::restore(is, new_ranks, config.replication);

    Ledger new_ledger(new_ranks, config.replication, config.seed,
                      [](const std::uint64_t& id) {
                        return mix64(id + 0x9e37u);
                      });
    std::vector<std::uint64_t> surviving = ledger.keys();
    std::sort(surviving.begin(), surviving.end());
    double carried = 0.0;
    for (const std::uint64_t id : surviving) {
      const TaskResult* entry = ledger.find(id);
      new_ledger.put(/*from_rank=*/0, id, *entry, tensor_bytes(entry->value));
      carried += tensor_bytes(entry->value);
    }

    // Compact rank numbering: survivor live_cur[i] becomes rank i.
    std::vector<SimTime> new_clocks(new_ranks);
    SimTime resume = at;
    for (const std::size_t r : live_cur) resume = max(resume, clocks[r]);
    const double restart_bytes =
        static_cast<double>(last_checkpoint.size()) + carried;
    const SimTime cost = wire_time(restart_bytes, new_ranks);
    stats.recovery_bytes += restart_bytes;
    stats.recovery_time += cost;
    for (std::size_t r = 0; r < new_ranks; ++r) {
      new_clocks[r] = resume + cost;
    }
    for (std::size_t orig = 0; orig < orig_to_cur.size(); ++orig) {
      const std::size_t cur = orig_to_cur[orig];
      orig_to_cur[orig] = kNoRank;
      if (cur == kNoRank || !ef.store().alive(cur)) continue;
      for (std::size_t i = 0; i < new_ranks; ++i) {
        if (live_cur[i] == cur) orig_to_cur[orig] = i;
      }
    }

    ef = std::move(restored);
    ledger = std::move(new_ledger);
    clocks = std::move(new_clocks);
    queues.assign(new_ranks, {});
    for (std::uint64_t id = 0; id < tasks.size(); ++id) {
      if (ledger.contains(id)) continue;
      queues[ef.owner(tasks[id].source)].push_back(id);
      ++stats.rehomed_tasks;
    }
    if (trace != nullptr) {
      trace->record_sim(recovery_track, "restart", obs::Category::kRecovery,
                        at, at + cost, {{"bytes", restart_bytes}});
    }
  };

  const auto apply_event = [&](const ChurnEvent& event) {
    const std::size_t cur = event.rank < orig_to_cur.size()
                                ? orig_to_cur[event.rank]
                                : kNoRank;
    if (event.kind == ChurnEvent::Kind::kKill) {
      MH_CHECK(cur != kNoRank && ef.store().alive(cur),
               "churn kill targets a rank that is not live");
      ++stats.kills;
      const std::size_t lost = ef.kill(cur);
      const auto ledger_report = ledger.kill(cur);
      std::vector<std::uint64_t> orphans = std::move(queues[cur]);
      queues[cur].clear();
      // Degraded-state tick: the store has lost copies but repair has not
      // run yet, so rank-death and replication-below-R fire here.
      publish_health(event.at);
      if (lost > 0) {
        stats.lost_leaves += lost;
        if (last_checkpoint.empty()) {
          // Unrecoverable: replication did not cover the loss and there is
          // no snapshot. Surface the typed error instead of limping on.
          throw fault::FaultError(
              fault::ErrorCode::kDataLost,
              "churn: rank " + std::to_string(event.rank) + " took " +
                  std::to_string(lost) +
                  " leaves with no surviving replica and no checkpoint "
                  "exists");
        }
        restart_from_checkpoint(event.at);
        publish_health(event.at);
        return;
      }
      repair_all(event.at, "promote_replicas");
      std::sort(orphans.begin(), orphans.end());
      for (const std::uint64_t id : orphans) {
        queues[ef.owner(tasks[id].source)].push_back(id);
      }
      stats.rehomed_tasks += orphans.size();
      // Ledger entries whose every copy sat on the dead rank: deterministic
      // re-execution restores them (same inputs, same bits).
      std::vector<std::uint64_t> lost_ids = ledger_report.lost;
      std::sort(lost_ids.begin(), lost_ids.end());
      for (const std::uint64_t id : lost_ids) {
        queues[ef.owner(tasks[id].source)].push_back(id);
        ++stats.reexecuted_tasks;
      }
      // Post-repair tick: replicas are back at full strength, so
      // replication-below-R resolves (the dead rank's lane stays down).
      publish_health(event.at);
    } else {
      ++stats.revives;
      std::size_t rank = cur;
      if (rank != kNoRank && !ef.store().alive(rank)) {
        ef.revive(rank);
        ledger.revive(rank);
        clocks[rank] = event.at;
      } else {
        // The slot was compacted away by a restart (or never existed):
        // rejoin as a fresh rank.
        MH_CHECK(cur == kNoRank, "churn re-add targets a live rank");
        rank = ef.add_rank();
        MH_CHECK(ledger.add_rank() == rank, "store rank counts diverged");
        clocks.push_back(event.at);
        queues.emplace_back();
        if (event.rank < orig_to_cur.size()) orig_to_cur[event.rank] = rank;
      }
      // repair() hands the rejoined rank exactly its rendezvous share —
      // and nothing else, so it never double-owns an entry.
      repair_all(event.at, "rebalance_rejoin");
      stats.rehomed_tasks += rehome_queues();
      // Rejoin tick: the revived rank's liveness lane flips back to 1 and
      // any rank-death alert on it resolves.
      publish_health(event.at);
    }
  };

  std::size_t next_event = 0;
  while (true) {
    // Next runnable rank: the live rank with work and the smallest clock.
    std::size_t run_rank = kNoRank;
    for (std::size_t r = 0; r < queues.size(); ++r) {
      if (!ef.store().alive(r) || queues[r].empty()) continue;
      if (run_rank == kNoRank || clocks[r] < clocks[run_rank]) run_rank = r;
    }
    if (run_rank == kNoRank) {
      // No work left; fire any remaining scripted events at their times.
      if (next_event >= config.events.size()) break;
      apply_event(config.events[next_event]);
      ++next_event;
      continue;
    }
    if (next_event < config.events.size() &&
        config.events[next_event].at <= clocks[run_rank]) {
      apply_event(config.events[next_event]);
      ++next_event;
      continue;  // membership changed; re-pick the runnable rank
    }
    const std::uint64_t id = queues[run_rank].front();
    queues[run_rank].erase(queues[run_rank].begin());
    run_task(run_rank, id);
    if (config.checkpoint_every > 0 && completed > 0 &&
        completed % config.checkpoint_every == 0) {
      take_checkpoint(clocks[run_rank]);
    }
    if (config.health != nullptr && config.telemetry_every > 0 &&
        completed % config.telemetry_every == 0) {
      publish_health(clocks[run_rank]);
    }
  }

  // Completeness scrub: write-through copies dropped by injected send
  // faults can leave a task with no surviving ledger entry. Re-execute
  // until the ledger covers the task set (deterministic, so the bits are
  // unaffected; bounded — each pass can only shrink the missing set unless
  // every re-put copy is dropped again).
  for (std::size_t pass = 0; pass < 64; ++pass) {
    std::vector<std::uint64_t> missing;
    for (std::uint64_t id = 0; id < tasks.size(); ++id) {
      if (!ledger.contains(id)) missing.push_back(id);
    }
    if (missing.empty()) break;
    MH_CHECK(pass + 1 < 64, "ledger scrub failed to converge");
    for (const std::uint64_t id : missing) {
      const std::size_t rank = ef.owner(tasks[id].source);
      run_task(rank, id);
      ++stats.reexecuted_tasks;
    }
  }

  for (const SimTime t : clocks) stats.makespan = max(stats.makespan, t);
  publish_health(stats.makespan);

  // Final reduction in ascending task-id order: the one order every churn
  // script shares. This is what makes the result bitwise-reproducible.
  mra::Function out(f.params());
  out.accumulate(mra::Key::root(ndim), Tensor::cube(ndim, f.params().k));
  for (std::uint64_t id = 0; id < tasks.size(); ++id) {
    const TaskResult* entry = ledger.find(id);
    MH_CHECK(entry != nullptr, "ledger incomplete after scrub");
    out.accumulate(entry->target, entry->value);
  }
  out.sum_down();

  auto& reg = obs::MetricsRegistry::global();
  reg.counter("mh_recovery_promotions_total",
              "replica copies re-created by repair")
      .inc(static_cast<double>(stats.promoted));
  reg.counter("mh_recovery_rehomed_tasks_total",
              "queued tasks moved off dead or onto rejoined ranks")
      .inc(static_cast<double>(stats.rehomed_tasks));
  reg.counter("mh_recovery_reexecuted_total",
              "tasks re-executed after result loss")
      .inc(static_cast<double>(stats.reexecuted_tasks));
  reg.counter("mh_recovery_checkpoints_total", "function snapshots taken")
      .inc(static_cast<double>(stats.checkpoints));
  reg.counter("mh_recovery_restarts_total",
              "checkpoint restarts into a resized world")
      .inc(static_cast<double>(stats.restarts));
  reg.counter("mh_recovery_bytes_total",
              "bytes of repair, restart, and carried-ledger traffic")
      .inc(stats.recovery_bytes);

  return ChurnResult{std::move(out), stats};
}

}  // namespace mh::cluster
