// Process maps: the tree-node -> compute-node assignment (paper §I-A, §III).
//
// MADNESS distributes the multiresolution tree's nodes over the cluster with
// a user-selectable process map and *static* load balancing. The paper uses
// two: an even distribution (Tables III/IV only) and the default
// locality-preserving map that assigns whole subtrees to nodes — which is
// uneven and the reason scaling in Tables V/VI is sublinear ("the process
// map assigns more work to some of the nodes").
//
// Beyond the aggregate per-node task counts (NodeLoads), the subtree-group
// maps are also available at group granularity (GroupMap): the steal-enabled
// scheduler in cluster.hpp migrates whole groups between nodes, so it needs
// to know *which* groups a node holds, not just how many tasks.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mh::cluster {

/// Load of each cluster node, in tasks.
using NodeLoads = std::vector<std::size_t>;

/// Per-group placement: group g runs on node node_of[g]. This is the unit
/// of locality (a whole subtree) and therefore the unit of migration for
/// the steal-enabled scheduler.
struct GroupMap {
  std::size_t nodes = 1;
  std::vector<std::size_t> node_of;

  /// Aggregate to per-node task counts.
  NodeLoads loads(const std::vector<std::size_t>& group_sizes) const;
};

/// Even round-robin of tasks over nodes (paper: "a MADNESS process map that
/// distributes work evenly among all compute nodes", Tables III/IV).
NodeLoads even_map(std::size_t total_tasks, std::size_t nodes);

/// Locality map at group granularity: each subtree group is hashed to one
/// node (the default MADNESS process map).
GroupMap locality_group_map(const std::vector<std::size_t>& group_sizes,
                            std::size_t nodes, std::uint64_t seed = 0);

/// Locality map: work arrives as subtree groups (given as per-group task
/// counts); each group is hashed to one node, so load is uneven and a small
/// group count starves some nodes (Table V's missing 6 -> 8 node speedup).
NodeLoads locality_map(const std::vector<std::size_t>& group_sizes,
                       std::size_t nodes, std::uint64_t seed = 0);

/// LPT at group granularity: groups placed largest-first onto the node with
/// the least assigned work (min-heap, O(G log G + G log N)).
GroupMap lpt_group_map(const std::vector<std::size_t>& group_sizes,
                       std::size_t nodes);

/// Extension beyond the paper: a balance-aware static map. Subtree groups
/// are placed largest-first onto the least-loaded node (classic LPT
/// scheduling). Keeps whole subtrees together (locality) while bounding
/// imbalance — what the paper's "MADNESS uses static load balancing"
/// limitation leaves on the table.
NodeLoads lpt_map(const std::vector<std::size_t>& group_sizes,
                  std::size_t nodes);

/// Largest node load divided by the ideal (total/nodes); 1.0 = balanced.
double imbalance(const NodeLoads& loads);

}  // namespace mh::cluster
