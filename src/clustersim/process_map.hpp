// Process maps: the tree-node -> compute-node assignment (paper §I-A, §III).
//
// MADNESS distributes the multiresolution tree's nodes over the cluster with
// a user-selectable process map and *static* load balancing. The paper uses
// two: an even distribution (Tables III/IV only) and the default
// locality-preserving map that assigns whole subtrees to nodes — which is
// uneven and the reason scaling in Tables V/VI is sublinear ("the process
// map assigns more work to some of the nodes").
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mh::cluster {

/// Load of each cluster node, in tasks.
using NodeLoads = std::vector<std::size_t>;

/// Even round-robin of tasks over nodes (paper: "a MADNESS process map that
/// distributes work evenly among all compute nodes", Tables III/IV).
NodeLoads even_map(std::size_t total_tasks, std::size_t nodes);

/// Locality map: work arrives as subtree groups (given as per-group task
/// counts); each group is hashed to one node, so load is uneven and a small
/// group count starves some nodes (Table V's missing 6 -> 8 node speedup).
NodeLoads locality_map(const std::vector<std::size_t>& group_sizes,
                       std::size_t nodes, std::uint64_t seed = 0);

/// Extension beyond the paper: a balance-aware static map. Subtree groups
/// are placed largest-first onto the least-loaded node (classic LPT
/// scheduling). Keeps whole subtrees together (locality) while bounding
/// imbalance — what the paper's "MADNESS uses static load balancing"
/// limitation leaves on the table.
NodeLoads lpt_map(const std::vector<std::size_t>& group_sizes,
                  std::size_t nodes);

/// Largest node load divided by the ideal (total/nodes); 1.0 = balanced.
double imbalance(const NodeLoads& loads);

}  // namespace mh::cluster
