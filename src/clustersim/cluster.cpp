#include "clustersim/cluster.hpp"

#include <algorithm>

#include "common/diagnostics.hpp"
#include "runtime/dispatch.hpp"

namespace mh::cluster {
namespace {

// Span sink for one node's phase track; a null session makes every call a
// no-op so the simulation paths need no guards. Spans carry causal
// identity: `link` names the preceding span and the batch task; the
// returned id lets the caller chain the next span.
struct NodeTracer {
  obs::TraceSession* session = nullptr;
  std::uint32_t phases = 0;

  std::uint64_t span(const char* name, obs::Category cat, SimTime start,
                     SimTime end, obs::TraceSession::SimLink link = {},
                     std::initializer_list<obs::SpanArg> args = {}) const {
    if (session != nullptr && end > start) {
      return session->record_sim_linked(phases, name, cat, start, end, link,
                                        args);
    }
    return 0;
  }
};

NodeTracer make_tracer(const ClusterConfig& config,
                       const std::string& node_track) {
  NodeTracer tracer;
  tracer.session = config.trace != nullptr ? config.trace
                                           : obs::TraceSession::current();
  if (tracer.session != nullptr) {
    tracer.phases = tracer.session->track(obs::ClockDomain::kSim,
                                          node_track + "/phases");
  }
  return tracer;
}

// Build the descriptor batch for `count` tasks, assigning still-untouched
// operator blocks (device-cache misses) to the earliest tasks.
std::vector<gpu::GpuTaskDesc> make_batch(const Workload& workload,
                                         std::size_t count,
                                         std::size_t& remaining_new_blocks) {
  std::vector<gpu::GpuTaskDesc> batch(count);
  const std::size_t touched = workload.shape.steps();
  for (auto& desc : batch) {
    desc.shape = workload.shape;
    desc.h_blocks_touched = touched;
    desc.h_blocks_new = std::min(touched, remaining_new_blocks);
    remaining_new_blocks -= desc.h_blocks_new;
  }
  return batch;
}

// GPU device-memory feasibility: input tree share + write-once cache.
bool gpu_fits(const Workload& workload, std::size_t tasks,
              const ClusterConfig& config, std::string* note) {
  const double cache_bytes = static_cast<double>(workload.unique_h_blocks) *
                             workload.shape.h_block_bytes();
  const double data_bytes =
      static_cast<double>(tasks) * workload.gpu_bytes_per_task;
  if (cache_bytes + data_bytes > config.node.device.memory_bytes) {
    if (note != nullptr) {
      *note = "data per node too large for the GPU RAM";
    }
    return false;
  }
  return true;
}

// Records the batch's phase spans and returns the id of the last one, so
// the next batch (or the comm tail) can chain to it. `link` seeds the
// chain: parent = preceding span, task = the batch's task id (0 lets the
// first recorded span start a task under its own id).
std::uint64_t record_batch(NodeBreakdown* bd, const NodeTracer& tracer,
                           const gpu::BatchTiming& timing,
                           obs::TraceSession::SimLink link = {}) {
  if (bd != nullptr) {
    bd->host_data += timing.host_prep + timing.host_post;
    bd->dispatch += timing.dispatch;
    bd->transfers += timing.transfer_in + timing.transfer_out;
    bd->gpu_kernels += timing.kernel_span;
  }
  // Phase spans laid out back-to-back in data-path order (Figure 3), each
  // chained to its predecessor; the device's own stream tracks carry the
  // exact per-kernel timing.
  std::uint64_t prev = link.parent;
  std::uint64_t task = link.task;
  const auto chain = [&](const char* name, obs::Category cat, SimTime s,
                         SimTime e) {
    const std::uint64_t id = tracer.span(name, cat, s, e, {prev, task});
    if (id != 0) {
      prev = id;
      if (task == 0) task = id;  // root span started the batch's task
    }
  };
  SimTime t = timing.start;
  chain("preprocess", obs::Category::kPreprocess, t, t + timing.host_prep);
  t += timing.host_prep;
  chain("dispatch", obs::Category::kBatchFlush, t, t + timing.dispatch);
  t += timing.dispatch;
  chain("h2d", obs::Category::kTransfer, t, t + timing.transfer_in);
  t += timing.transfer_in;
  chain("kernels", obs::Category::kGpuKernel, t, t + timing.kernel_span);
  t += timing.kernel_span;
  chain("d2h", obs::Category::kTransfer, t, t + timing.transfer_out);
  chain("postprocess", obs::Category::kPostprocess,
        timing.total_done - timing.host_post, timing.total_done);
  return prev;
}

SimTime gpu_only_node_time(const Workload& workload, std::size_t tasks,
                           const ClusterConfig& config,
                           NodeBreakdown* breakdown,
                           const NodeTracer& tracer,
                           const std::string& node_track,
                           std::uint64_t* last_span) {
  gpu::GpuDevice device(config.node.device, config.node.gpu_streams);
  if (tracer.session != nullptr) {
    device.set_trace(tracer.session, node_track + "/gpu/");
  }
  gpu::BatchConfig gcfg = config.gpu;
  gcfg.streams = config.node.gpu_streams;
  std::size_t remaining_new = workload.unique_h_blocks;
  SimTime t = SimTime::zero();
  std::size_t left = tasks;
  std::uint64_t prev_last = 0;
  while (left > 0) {
    const std::size_t count = std::min(left, config.batch_size);
    const auto batch = make_batch(workload, count, remaining_new);
    const std::uint64_t task = obs::mint_span_id();
    device.set_trace_link({prev_last, task});
    const auto timing = gpu::run_apply_batch(device, nullptr, batch, gcfg, t);
    prev_last =
        record_batch(breakdown, tracer, timing, {prev_last, task});
    t = timing.total_done;
    left -= count;
  }
  if (last_span != nullptr) *last_span = prev_last;
  return t;
}

SimTime cpu_only_node_time(const Workload& workload, std::size_t tasks,
                           const ClusterConfig& config) {
  return cpu_batch_time(config.node.cpu, workload.shape, tasks,
                        config.cpu_compute_threads,
                        config.rank_reduce ? config.rank_fraction : 1.0);
}

SimTime hybrid_node_time(const Workload& workload, std::size_t tasks,
                         const ClusterConfig& config,
                         NodeBreakdown* breakdown, const NodeTracer& tracer,
                         const std::string& node_track,
                         std::uint64_t* last_span) {
  gpu::GpuDevice device(config.node.device, config.node.gpu_streams);
  if (tracer.session != nullptr) {
    device.set_trace(tracer.session, node_track + "/gpu/");
  }
  gpu::BatchConfig gcfg = config.gpu;
  gcfg.streams = config.node.gpu_streams;

  // Split fraction: explicit, or k* = n/(m+n) from the model's own rates
  // measured on a probe batch (mirrors the paper: the developer knows the
  // relative CPU/GPU performance of the operator).
  double frac = config.cpu_fraction;
  double gpu_per_item_s = 0.0;  // probe GPU-only seconds per item
  if (frac < 0.0) {
    const std::size_t probe = std::min<std::size_t>(
        std::max<std::size_t>(tasks, 1), config.batch_size);
    const SimTime m = cpu_batch_time(
        config.node.cpu, workload.shape, probe, config.cpu_compute_threads,
        config.rank_reduce ? config.rank_fraction : 1.0);
    gpu::GpuDevice probe_dev(config.node.device, config.node.gpu_streams);
    std::size_t probe_new = 0;  // steady-state: cache is warm
    const auto probe_batch = make_batch(workload, probe, probe_new);
    const SimTime n =
        gpu::run_apply_batch(probe_dev, nullptr, probe_batch, gcfg,
                             SimTime::zero())
            .elapsed();
    frac = rt::optimal_cpu_fraction(m.sec(), n.sec());
    gpu_per_item_s = n.sec() / static_cast<double>(probe);
    if (tracer.session != nullptr) {
      // Zero-length marker carrying the measured full-batch CPU-only (m)
      // and GPU-only (n) times — the overlap-model analyzer compares every
      // batch's measured makespan against m·n/(m+n) built from these.
      tracer.session->record_sim_linked(
          tracer.phases, "probe", obs::Category::kOther, SimTime::zero(),
          SimTime::zero(), {},
          {{"m_us", m.us()},
           {"n_us", n.us()},
           {"items", static_cast<double>(probe)},
           {"frac", frac}});
    }
  }

  std::size_t remaining_new = workload.unique_h_blocks;
  SimTime t = SimTime::zero();
  std::size_t left = tasks;
  std::uint64_t prev_last = 0;
  while (left > 0) {
    const std::size_t count = std::min(left, config.batch_size);
    std::size_t ncpu = rt::cpu_share(count, frac);
    // Quantization-aware refinement (auto-split only): cpu_batch_time runs
    // in whole rounds of cpu_compute_threads items, so the continuous k*
    // can strand a mostly-idle final CPU round (e.g. 32 items on 10
    // threads = 4 rounds, the last one 80% empty). Snap ncpu to the
    // neighbouring round boundaries and keep whichever candidate the model
    // predicts finishes the batch soonest. An explicit cpu_fraction stays
    // untouched — it is the caller's ablation knob.
    if (gpu_per_item_s > 0.0 && config.cpu_compute_threads > 0) {
      const std::size_t threads = config.cpu_compute_threads;
      const double rank_scale =
          config.rank_reduce ? config.rank_fraction : 1.0;
      const auto predicted_bound = [&](std::size_t nc) {
        const double cpu_s =
            nc == 0 ? 0.0
                    : cpu_batch_time(config.node.cpu, workload.shape, nc,
                                     threads, rank_scale)
                          .sec();
        return std::max(cpu_s,
                        gpu_per_item_s * static_cast<double>(count - nc));
      };
      std::size_t best = ncpu;
      const std::size_t down = ncpu - (ncpu % threads);
      for (const std::size_t cand : {down, down + threads}) {
        if (cand <= count && predicted_bound(cand) < predicted_bound(best)) {
          best = cand;
        }
      }
      ncpu = best;
    }
    const std::size_t ngpu = count - ncpu;
    const SimTime cpu_part =
        cpu_batch_time(config.node.cpu, workload.shape, ncpu,
                       config.cpu_compute_threads,
                       config.rank_reduce ? config.rank_fraction : 1.0);
    const SimTime cpu_done = t + cpu_part;
    if (breakdown != nullptr) breakdown->cpu_compute += cpu_part;
    // Both sides of the batch share one task id and chain causally to the
    // previous batch's last span (the barrier at t).
    const std::uint64_t task = obs::mint_span_id();
    std::uint64_t cpu_id = 0;
    if (ncpu > 0) {
      cpu_id = tracer.span("cpu-compute", obs::Category::kCpuCompute, t,
                           cpu_done, {prev_last, task},
                           {{"items", static_cast<double>(count)},
                            {"ncpu", static_cast<double>(ncpu)}});
    }
    SimTime gpu_done = t;
    std::uint64_t gpu_last = 0;
    if (ngpu > 0) {
      const auto batch = make_batch(workload, ngpu, remaining_new);
      device.set_trace_link({prev_last, task});
      const auto timing = gpu::run_apply_batch(device, nullptr, batch, gcfg, t);
      gpu_last = record_batch(breakdown, tracer, timing, {prev_last, task});
      gpu_done = timing.total_done;
    }
    t = max(cpu_done, gpu_done);
    // The next batch chains to whichever side finished last; the earlier
    // side joins that barrier through an explicit edge (a single parent
    // field cannot express the two-into-one join).
    const std::uint64_t late = cpu_done >= gpu_done ? cpu_id : gpu_last;
    const std::uint64_t early = cpu_done >= gpu_done ? gpu_last : cpu_id;
    if (tracer.session != nullptr && late != 0 && early != 0) {
      tracer.session->add_edge(early, late);
    }
    prev_last = late != 0 ? late : early;
    left -= count;
  }
  if (last_span != nullptr) *last_span = prev_last;
  return t;
}

}  // namespace

SimTime node_run_time(const Workload& workload, std::size_t tasks,
                      const ClusterConfig& config, NodeBreakdown* breakdown,
                      const std::string& node_track,
                      std::uint64_t* last_span) {
  if (last_span != nullptr) *last_span = 0;
  if (tasks == 0) return SimTime::zero();
  const NodeTracer tracer = make_tracer(config, node_track);
  switch (config.mode) {
    case ComputeMode::kCpuOnly: {
      const SimTime t = cpu_only_node_time(workload, tasks, config);
      if (breakdown != nullptr) breakdown->cpu_compute += t;
      const std::uint64_t id = tracer.span(
          "cpu-compute", obs::Category::kCpuCompute, SimTime::zero(), t);
      if (last_span != nullptr) *last_span = id;
      return t;
    }
    case ComputeMode::kGpuOnly:
      return gpu_only_node_time(workload, tasks, config, breakdown, tracer,
                                node_track, last_span);
    case ComputeMode::kHybrid:
      return hybrid_node_time(workload, tasks, config, breakdown, tracer,
                              node_track, last_span);
  }
  MH_CHECK(false, "unknown compute mode");
  return SimTime::zero();
}

ClusterResult run_cluster_apply(const Workload& workload,
                                const NodeLoads& loads,
                                const ClusterConfig& config) {
  MH_CHECK(loads.size() == config.nodes, "load vector / node count mismatch");
  MH_CHECK(config.nodes >= 1, "need at least one node");

  ClusterResult result;
  result.load_imbalance = imbalance(loads);

  // Feasibility: every node's GPU data must fit (GPU and hybrid modes).
  if (config.mode != ComputeMode::kCpuOnly) {
    const std::size_t worst = *std::max_element(loads.begin(), loads.end());
    std::string note;
    if (!gpu_fits(workload, worst, config, &note)) {
      result.feasible = false;
      result.note = note;
      return result;
    }
  }

  const double msg_bytes = workload.shape.tensor_bytes();
  for (std::size_t nodei = 0; nodei < loads.size(); ++nodei) {
    const std::size_t tasks = loads[nodei];
    const std::string node_track = "node" + std::to_string(nodei);
    // Per-rank sessions, when provided, give every node its own
    // TraceSession (merged later with write_merged_chrome_trace).
    ClusterConfig node_config = config;
    if (!config.node_traces.empty()) {
      node_config.trace = config.node_traces[nodei % config.node_traces.size()];
    }
    NodeBreakdown breakdown;
    std::uint64_t last_span = 0;
    const SimTime compute = node_run_time(workload, tasks, node_config,
                                          &breakdown, node_track, &last_span);
    // Remote accumulations: latency-dominated small messages, overlapped
    // poorly with the tail of the computation (conservatively additive).
    const double msgs =
        static_cast<double>(tasks) * workload.remote_fraction;
    const SimTime comm =
        SimTime::seconds(msgs * (config.message_latency.sec() +
                                 msg_bytes / config.interconnect_bandwidth));
    make_tracer(node_config, node_track)
        .span("comm", obs::Category::kComm, compute, compute + comm,
              {last_span, 0});
    const SimTime total = compute + comm;
    result.node_times.push_back(total);
    if (total > result.makespan) {
      result.makespan = total;
      result.slowest_node_compute = compute;
      result.slowest_node_comm = comm;
      breakdown.comm = comm;
      result.slowest_breakdown = breakdown;
    }
  }
  return result;
}

}  // namespace mh::cluster
