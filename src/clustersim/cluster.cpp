#include "clustersim/cluster.hpp"

#include <algorithm>
#include <cstdlib>
#include <deque>
#include <memory>

#include "common/diagnostics.hpp"
#include "common/hash.hpp"
#include "obs/health.hpp"
#include "runtime/dispatch.hpp"

namespace mh::cluster {
namespace {

// Span sink for one node's phase track; a null session makes every call a
// no-op so the simulation paths need no guards. Spans carry causal
// identity: `link` names the preceding span and the batch task; the
// returned id lets the caller chain the next span.
struct NodeTracer {
  obs::TraceSession* session = nullptr;
  std::uint32_t phases = 0;

  std::uint64_t span(const char* name, obs::Category cat, SimTime start,
                     SimTime end, obs::TraceSession::SimLink link = {},
                     std::initializer_list<obs::SpanArg> args = {}) const {
    if (session != nullptr && end > start) {
      return session->record_sim_linked(phases, name, cat, start, end, link,
                                        args);
    }
    return 0;
  }
};

NodeTracer make_tracer(const ClusterConfig& config,
                       const std::string& node_track) {
  NodeTracer tracer;
  tracer.session = config.trace != nullptr ? config.trace
                                           : obs::TraceSession::current();
  if (tracer.session != nullptr) {
    tracer.phases = tracer.session->track(obs::ClockDomain::kSim,
                                          node_track + "/phases");
  }
  return tracer;
}

// Build the descriptor batch for `count` tasks, assigning still-untouched
// operator blocks (device-cache misses) to the earliest tasks.
std::vector<gpu::GpuTaskDesc> make_batch(const Workload& workload,
                                         std::size_t count,
                                         std::size_t& remaining_new_blocks) {
  std::vector<gpu::GpuTaskDesc> batch(count);
  const std::size_t touched = workload.shape.steps();
  for (auto& desc : batch) {
    desc.shape = workload.shape;
    desc.h_blocks_touched = touched;
    desc.h_blocks_new = std::min(touched, remaining_new_blocks);
    remaining_new_blocks -= desc.h_blocks_new;
  }
  return batch;
}

// GPU device-memory feasibility: input tree share + write-once cache.
bool gpu_fits(const Workload& workload, std::size_t tasks,
              const ClusterConfig& config, std::string* note) {
  const double cache_bytes = static_cast<double>(workload.unique_h_blocks) *
                             workload.shape.h_block_bytes();
  const double data_bytes =
      static_cast<double>(tasks) * workload.gpu_bytes_per_task;
  if (cache_bytes + data_bytes > config.node.device.memory_bytes) {
    if (note != nullptr) {
      *note = "data per node too large for the GPU RAM";
    }
    return false;
  }
  return true;
}

// Records the batch's phase spans and returns the id of the last one, so
// the next batch (or the comm tail) can chain to it. `link` seeds the
// chain: parent = preceding span, task = the batch's task id (0 lets the
// first recorded span start a task under its own id).
std::uint64_t record_batch(NodeBreakdown* bd, const NodeTracer& tracer,
                           const gpu::BatchTiming& timing,
                           obs::TraceSession::SimLink link = {}) {
  if (bd != nullptr) {
    bd->host_data += timing.host_prep + timing.host_post;
    bd->dispatch += timing.dispatch;
    bd->transfers += timing.transfer_in + timing.transfer_out;
    bd->gpu_kernels += timing.kernel_span;
  }
  // Phase spans laid out back-to-back in data-path order (Figure 3), each
  // chained to its predecessor; the device's own stream tracks carry the
  // exact per-kernel timing.
  std::uint64_t prev = link.parent;
  std::uint64_t task = link.task;
  const auto chain = [&](const char* name, obs::Category cat, SimTime s,
                         SimTime e) {
    const std::uint64_t id = tracer.span(name, cat, s, e, {prev, task});
    if (id != 0) {
      prev = id;
      if (task == 0) task = id;  // root span started the batch's task
    }
  };
  SimTime t = timing.start;
  chain("preprocess", obs::Category::kPreprocess, t, t + timing.host_prep);
  t += timing.host_prep;
  chain("dispatch", obs::Category::kBatchFlush, t, t + timing.dispatch);
  t += timing.dispatch;
  chain("h2d", obs::Category::kTransfer, t, t + timing.transfer_in);
  t += timing.transfer_in;
  chain("kernels", obs::Category::kGpuKernel, t, t + timing.kernel_span);
  t += timing.kernel_span;
  chain("d2h", obs::Category::kTransfer, t, t + timing.transfer_out);
  chain("postprocess", obs::Category::kPostprocess,
        timing.total_done - timing.host_post, timing.total_done);
  return prev;
}

// The GPU/hybrid node times below run on an absolute clock from `start` and
// return the end time; node_run_time converts back to a duration. The
// causal chain is seeded with `chain_from` so back-to-back invocations on
// one node (the steal scheduler runs one group per call) form a single
// connected per-rank timeline.
SimTime gpu_only_node_time(const Workload& workload, std::size_t tasks,
                           const ClusterConfig& config,
                           NodeBreakdown* breakdown,
                           const NodeTracer& tracer,
                           const std::string& node_track,
                           std::uint64_t* last_span, SimTime start,
                           std::uint64_t chain_from) {
  gpu::GpuDevice device(config.node.device, config.node.gpu_streams);
  if (tracer.session != nullptr) {
    device.set_trace(tracer.session, node_track + "/gpu/");
  }
  gpu::BatchConfig gcfg = config.gpu;
  gcfg.streams = config.node.gpu_streams;
  std::size_t remaining_new = workload.unique_h_blocks;
  SimTime t = start;
  std::size_t left = tasks;
  std::uint64_t prev_last = chain_from;
  while (left > 0) {
    const std::size_t count = std::min(left, config.batch_size);
    const auto batch = make_batch(workload, count, remaining_new);
    const std::uint64_t task = obs::mint_span_id();
    device.set_trace_link({prev_last, task});
    const auto timing = gpu::run_apply_batch(device, nullptr, batch, gcfg, t);
    prev_last =
        record_batch(breakdown, tracer, timing, {prev_last, task});
    t = timing.total_done;
    left -= count;
  }
  if (last_span != nullptr) *last_span = prev_last;
  return t;
}

SimTime cpu_only_node_time(const Workload& workload, std::size_t tasks,
                           const ClusterConfig& config) {
  return cpu_batch_time(config.node.cpu, workload.shape, tasks,
                        config.cpu_compute_threads,
                        config.rank_reduce ? config.rank_fraction : 1.0);
}

SimTime hybrid_node_time(const Workload& workload, std::size_t tasks,
                         const ClusterConfig& config,
                         NodeBreakdown* breakdown, const NodeTracer& tracer,
                         const std::string& node_track,
                         std::uint64_t* last_span, SimTime start,
                         std::uint64_t chain_from) {
  gpu::GpuDevice device(config.node.device, config.node.gpu_streams);
  if (tracer.session != nullptr) {
    device.set_trace(tracer.session, node_track + "/gpu/");
  }
  gpu::BatchConfig gcfg = config.gpu;
  gcfg.streams = config.node.gpu_streams;

  // Split fraction: explicit, or k* = n/(m+n) from the model's own rates
  // measured on a probe batch (mirrors the paper: the developer knows the
  // relative CPU/GPU performance of the operator).
  double frac = config.cpu_fraction;
  double gpu_per_item_s = 0.0;  // probe GPU-only seconds per item
  if (frac < 0.0) {
    const std::size_t probe = std::min<std::size_t>(
        std::max<std::size_t>(tasks, 1), config.batch_size);
    const SimTime m = cpu_batch_time(
        config.node.cpu, workload.shape, probe, config.cpu_compute_threads,
        config.rank_reduce ? config.rank_fraction : 1.0);
    gpu::GpuDevice probe_dev(config.node.device, config.node.gpu_streams);
    std::size_t probe_new = 0;  // steady-state: cache is warm
    const auto probe_batch = make_batch(workload, probe, probe_new);
    const SimTime n =
        gpu::run_apply_batch(probe_dev, nullptr, probe_batch, gcfg,
                             SimTime::zero())
            .elapsed();
    frac = rt::optimal_cpu_fraction(m.sec(), n.sec());
    gpu_per_item_s = n.sec() / static_cast<double>(probe);
    if (tracer.session != nullptr) {
      // Zero-length marker carrying the measured full-batch CPU-only (m)
      // and GPU-only (n) times — the overlap-model analyzer compares every
      // batch's measured makespan against m·n/(m+n) built from these.
      tracer.session->record_sim_linked(
          tracer.phases, "probe", obs::Category::kOther, start, start, {},
          {{"m_us", m.us()},
           {"n_us", n.us()},
           {"items", static_cast<double>(probe)},
           {"frac", frac}});
    }
  }

  std::size_t remaining_new = workload.unique_h_blocks;
  SimTime t = start;
  std::size_t left = tasks;
  std::uint64_t prev_last = chain_from;
  while (left > 0) {
    const std::size_t count = std::min(left, config.batch_size);
    std::size_t ncpu = rt::cpu_share(count, frac);
    // Quantization-aware refinement (auto-split only): cpu_batch_time runs
    // in whole rounds of cpu_compute_threads items, so the continuous k*
    // can strand a mostly-idle final CPU round (e.g. 32 items on 10
    // threads = 4 rounds, the last one 80% empty). Snap ncpu to the
    // neighbouring round boundaries and keep whichever candidate the model
    // predicts finishes the batch soonest. An explicit cpu_fraction stays
    // untouched — it is the caller's ablation knob.
    if (gpu_per_item_s > 0.0 && config.cpu_compute_threads > 0) {
      const std::size_t threads = config.cpu_compute_threads;
      const double rank_scale =
          config.rank_reduce ? config.rank_fraction : 1.0;
      const auto predicted_bound = [&](std::size_t nc) {
        const double cpu_s =
            nc == 0 ? 0.0
                    : cpu_batch_time(config.node.cpu, workload.shape, nc,
                                     threads, rank_scale)
                          .sec();
        return std::max(cpu_s,
                        gpu_per_item_s * static_cast<double>(count - nc));
      };
      std::size_t best = ncpu;
      const std::size_t down = ncpu - (ncpu % threads);
      for (const std::size_t cand : {down, down + threads}) {
        if (cand <= count && predicted_bound(cand) < predicted_bound(best)) {
          best = cand;
        }
      }
      ncpu = best;
    }
    const std::size_t ngpu = count - ncpu;
    const SimTime cpu_part =
        cpu_batch_time(config.node.cpu, workload.shape, ncpu,
                       config.cpu_compute_threads,
                       config.rank_reduce ? config.rank_fraction : 1.0);
    const SimTime cpu_done = t + cpu_part;
    if (breakdown != nullptr) breakdown->cpu_compute += cpu_part;
    // Both sides of the batch share one task id and chain causally to the
    // previous batch's last span (the barrier at t).
    const std::uint64_t task = obs::mint_span_id();
    std::uint64_t cpu_id = 0;
    if (ncpu > 0) {
      cpu_id = tracer.span("cpu-compute", obs::Category::kCpuCompute, t,
                           cpu_done, {prev_last, task},
                           {{"items", static_cast<double>(count)},
                            {"ncpu", static_cast<double>(ncpu)}});
    }
    SimTime gpu_done = t;
    std::uint64_t gpu_last = 0;
    if (ngpu > 0) {
      const auto batch = make_batch(workload, ngpu, remaining_new);
      device.set_trace_link({prev_last, task});
      const auto timing = gpu::run_apply_batch(device, nullptr, batch, gcfg, t);
      gpu_last = record_batch(breakdown, tracer, timing, {prev_last, task});
      gpu_done = timing.total_done;
    }
    t = max(cpu_done, gpu_done);
    // The next batch chains to whichever side finished last; the earlier
    // side joins that barrier through an explicit edge (a single parent
    // field cannot express the two-into-one join).
    const std::uint64_t late = cpu_done >= gpu_done ? cpu_id : gpu_last;
    const std::uint64_t early = cpu_done >= gpu_done ? gpu_last : cpu_id;
    if (tracer.session != nullptr && late != 0 && early != 0) {
      tracer.session->add_edge(early, late);
    }
    prev_last = late != 0 ? late : early;
    left -= count;
  }
  if (last_span != nullptr) *last_span = prev_last;
  return t;
}

// Seconds per task under the node model — the steal scheduler's shared
// projection for both sides of a profitability check. Exact modulo batch
// quantization for CPU-only; probe-derived (warm operator cache) for GPU
// and hybrid, where the hybrid ideal per-batch time is m·n/(m+n) or the
// explicit split's max side.
double estimate_task_seconds(const Workload& workload,
                             const ClusterConfig& config) {
  const std::size_t probe =
      std::max<std::size_t>(std::size_t{1}, config.batch_size);
  const double rank_scale = config.rank_reduce ? config.rank_fraction : 1.0;
  const double m = cpu_batch_time(config.node.cpu, workload.shape, probe,
                                  config.cpu_compute_threads, rank_scale)
                       .sec();
  if (config.mode == ComputeMode::kCpuOnly) {
    return m / static_cast<double>(probe);
  }
  gpu::GpuDevice device(config.node.device, config.node.gpu_streams);
  gpu::BatchConfig gcfg = config.gpu;
  gcfg.streams = config.node.gpu_streams;
  std::size_t warm = 0;  // steady state: operator cache warm
  const auto batch = make_batch(workload, probe, warm);
  const double n =
      gpu::run_apply_batch(device, nullptr, batch, gcfg, SimTime::zero())
          .elapsed()
          .sec();
  if (config.mode == ComputeMode::kGpuOnly) {
    return n / static_cast<double>(probe);
  }
  const double batch_s =
      config.cpu_fraction >= 0.0
          ? std::max(m * config.cpu_fraction,
                     n * (1.0 - config.cpu_fraction))
          : (m * n) / (m + n);
  return batch_s / static_cast<double>(probe);
}

}  // namespace

SimTime node_run_time(const Workload& workload, std::size_t tasks,
                      const ClusterConfig& config, NodeBreakdown* breakdown,
                      const std::string& node_track,
                      std::uint64_t* last_span, SimTime start,
                      std::uint64_t chain_from) {
  if (last_span != nullptr) *last_span = 0;
  if (tasks == 0) return SimTime::zero();
  const NodeTracer tracer = make_tracer(config, node_track);
  switch (config.mode) {
    case ComputeMode::kCpuOnly: {
      const SimTime t = cpu_only_node_time(workload, tasks, config);
      if (breakdown != nullptr) breakdown->cpu_compute += t;
      const std::uint64_t id =
          tracer.span("cpu-compute", obs::Category::kCpuCompute, start,
                      start + t, {chain_from, 0});
      if (last_span != nullptr) *last_span = id;
      return t;
    }
    case ComputeMode::kGpuOnly:
      return gpu_only_node_time(workload, tasks, config, breakdown, tracer,
                                node_track, last_span, start, chain_from) -
             start;
    case ComputeMode::kHybrid:
      return hybrid_node_time(workload, tasks, config, breakdown, tracer,
                              node_track, last_span, start, chain_from) -
             start;
  }
  MH_CHECK(false, "unknown compute mode");
  return SimTime::zero();
}

ClusterResult run_cluster_apply(const Workload& workload,
                                const NodeLoads& loads,
                                const ClusterConfig& config) {
  MH_CHECK(loads.size() == config.nodes, "load vector / node count mismatch");
  MH_CHECK(config.nodes >= 1, "need at least one node");

  ClusterResult result;
  result.load_imbalance = imbalance(loads);

  // An all-zero schedule is feasible but vacuous: makespan 0 and
  // imbalance 1.0 would read as a perfect run, so say what happened.
  std::size_t total_tasks = 0;
  for (const std::size_t l : loads) total_tasks += l;
  if (total_tasks == 0) {
    result.empty = true;
    result.note = "empty schedule: no tasks";
    result.node_times.assign(loads.size(), SimTime::zero());
    return result;
  }

  // Feasibility: every node's GPU data must fit (GPU and hybrid modes).
  if (config.mode != ComputeMode::kCpuOnly) {
    const std::size_t worst = *std::max_element(loads.begin(), loads.end());
    std::string note;
    if (!gpu_fits(workload, worst, config, &note)) {
      result.feasible = false;
      result.note = note;
      return result;
    }
  }

  const double msg_bytes = workload.shape.tensor_bytes();
  for (std::size_t nodei = 0; nodei < loads.size(); ++nodei) {
    const std::size_t tasks = loads[nodei];
    const std::string node_track = "node" + std::to_string(nodei);
    // Per-rank sessions, when provided, give every node its own
    // TraceSession (merged later with write_merged_chrome_trace).
    ClusterConfig node_config = config;
    if (!config.node_traces.empty()) {
      node_config.trace = config.node_traces[nodei % config.node_traces.size()];
    }
    NodeBreakdown breakdown;
    std::uint64_t last_span = 0;
    const SimTime compute = node_run_time(workload, tasks, node_config,
                                          &breakdown, node_track, &last_span);
    // Remote accumulations: latency-dominated small messages, overlapped
    // poorly with the tail of the computation (conservatively additive).
    // A node with no tasks sends nothing — emitting its comm span would
    // plant a parentless orphan at t=0 on an otherwise empty rank.
    SimTime comm;
    if (tasks > 0) {
      const double msgs =
          static_cast<double>(tasks) * workload.remote_fraction;
      comm =
          SimTime::seconds(msgs * (config.message_latency.sec() +
                                   msg_bytes / config.interconnect_bandwidth));
      make_tracer(node_config, node_track)
          .span("comm", obs::Category::kComm, compute, compute + comm,
                {last_span, 0});
    }
    const SimTime total = compute + comm;
    result.node_times.push_back(total);
    if (total > result.makespan) {
      result.makespan = total;
      result.slowest_node_compute = compute;
      result.slowest_node_comm = comm;
      breakdown.comm = comm;
      result.slowest_breakdown = breakdown;
    }
  }
  return result;
}

StealPolicy StealPolicy::from_env() {
  StealPolicy policy;
  if (const char* v = std::getenv("MH_STEAL_VICTIM")) {
    const std::string s(v);
    if (s == "random") {
      policy.victim = Victim::kRandom;
    } else if (s == "locality") {
      policy.victim = Victim::kLocalityBiased;
    }
  }
  if (const char* v = std::getenv("MH_STEAL_OWNED_FRACTION")) {
    char* end = nullptr;
    const double f = std::strtod(v, &end);
    if (end != v && f >= 0.0 && f <= 1.0) policy.owned_bytes_fraction = f;
  }
  return policy;
}

StealScheduleResult run_cluster_apply_stealing(
    const Workload& workload, const GroupMap& placement,
    const std::vector<std::size_t>& group_owner, const ClusterConfig& config,
    const StealPolicy& policy) {
  MH_CHECK(config.nodes >= 1, "need at least one node");
  MH_CHECK(placement.nodes == config.nodes,
           "placement node count / cluster node count mismatch");
  const std::vector<std::size_t>& sizes = workload.group_sizes;
  MH_CHECK(placement.node_of.size() == sizes.size(),
           "placement / workload group count mismatch");
  MH_CHECK(group_owner.empty() || group_owner.size() == sizes.size(),
           "group owner / group count mismatch");

  StealScheduleResult out;
  ClusterResult& result = out.result;
  const std::size_t nodes = config.nodes;
  out.executed.assign(nodes, 0);

  std::size_t total_tasks = 0;
  for (const std::size_t s : sizes) total_tasks += s;
  if (total_tasks == 0) {
    result.empty = true;
    result.note = "empty schedule: no tasks";
    result.node_times.assign(nodes, SimTime::zero());
    return out;
  }

  // Feasibility against the worst *initial* load: stealing only moves work
  // off that node, so the static bound is the conservative one.
  if (config.mode != ComputeMode::kCpuOnly) {
    const NodeLoads initial = placement.loads(sizes);
    const std::size_t worst =
        *std::max_element(initial.begin(), initial.end());
    std::string note;
    if (!gpu_fits(workload, worst, config, &note)) {
      result.feasible = false;
      result.note = note;
      return out;
    }
  }

  // Per-node discrete-event state: a FIFO queue of whole groups and a
  // local clock. Steal decisions compare clocks plus the shared per-task
  // estimate, so both sides of a profitability check use one yardstick.
  struct NodeState {
    std::deque<std::size_t> queue;
    SimTime t;
    std::size_t pending = 0;  // queued tasks
    NodeBreakdown breakdown;
    std::uint64_t chain = 0;  // last causal span on this node's track
    ClusterConfig cfg;
    std::string track;
  };
  std::vector<NodeState> ns(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    ns[i].cfg = config;
    if (!config.node_traces.empty()) {
      ns[i].cfg.trace = config.node_traces[i % config.node_traces.size()];
    }
    ns[i].track = "node" + std::to_string(i);
  }
  for (std::size_t g = 0; g < sizes.size(); ++g) {
    if (sizes[g] == 0) continue;  // empty groups neither run nor migrate
    NodeState& home = ns[placement.node_of[g]];
    home.queue.push_back(g);
    home.pending += sizes[g];
  }

  // Live health plane: per-node queue depth / progress and the steal
  // counters ship as delta-encoded snapshots on the simulated clock, once
  // at placement time and once after every executed group — the straggler
  // rule sees depths diverge from the cluster median while the run is
  // still in flight.
  std::unique_ptr<obs::ScenarioTelemetry> tel;
  double tick_time = 0.0;
  const auto publish_health = [&](double at) {
    if (config.health == nullptr) return;
    for (std::size_t i = 0; i < nodes; ++i) {
      tel->gauge(i, "mh_rank_alive", 1.0);
      tel->gauge(i, "mh_rank_queue_depth",
                 static_cast<double>(ns[i].pending));
      tel->counter(i, "mh_rank_tasks_executed",
                   static_cast<double>(out.executed[i]));
    }
    tel->counter(0, "mh_steal_requests",
                 static_cast<double>(out.steals.attempts));
    tel->counter(0, "mh_steal_grants",
                 static_cast<double>(out.steals.steals));
    tel->counter(0, "mh_steal_denials",
                 static_cast<double>(out.steals.attempts - out.steals.steals));
    // Node clocks run at their own pace; the detector tick advances on the
    // latest time observed so the alert timeline stays monotone.
    tick_time = std::max(tick_time, at);
    config.health->tick(tel->collect(tick_time), tick_time);
  };
  if (config.health != nullptr) {
    tel = std::make_unique<obs::ScenarioTelemetry>(nodes);
    publish_health(0.0);
  }

  const double est = estimate_task_seconds(workload, config);
  const double msg_bytes = workload.shape.tensor_bytes();
  const std::size_t cap =
      policy.max_steals != 0 ? policy.max_steals : 4 * sizes.size();
  std::uint64_t rng = mix64(policy.seed | 1);
  const auto next_rand = [&rng]() {
    rng = mix64(rng + 0x9e3779b97f4a7c15ULL);
    return rng;
  };

  const auto owned_by = [&](std::size_t g, std::size_t rank) {
    return !group_owner.empty() && group_owner[g] == rank;
  };

  // Migration cost of group g into `thief` (request round trip + transfer;
  // owned groups ship descriptors, not coefficients) and the thief's
  // projected finish were it granted.
  const auto steal_cost = [&](std::size_t g, bool owned) {
    const double bytes = static_cast<double>(sizes[g]) * msg_bytes *
                         (owned ? policy.owned_bytes_fraction : 1.0);
    return SimTime::seconds(3.0 * config.message_latency.sec() +
                            bytes / config.interconnect_bandwidth);
  };
  const auto thief_finish = [&](const NodeState& me, std::size_t g,
                                bool owned) {
    return me.t + steal_cost(g, owned) +
           SimTime::seconds(est * static_cast<double>(sizes[g]));
  };

  const auto attempt_steal = [&](std::size_t thief) -> bool {
    NodeState& me = ns[thief];
    std::size_t victim = nodes;
    std::size_t group = sizes.size();
    // A candidate is profitable when the thief finishes the group before
    // the victim would drain its whole queue — the migration then
    // shortens the victim's projected finish instead of shuffling work.
    const auto profitable = [&](std::size_t v, std::size_t g, bool owned) {
      const SimTime victim_done =
          ns[v].t +
          SimTime::seconds(est * static_cast<double>(ns[v].pending));
      return thief_finish(me, g, owned) < victim_done;
    };
    if (policy.victim == StealPolicy::Victim::kRandom) {
      std::vector<std::size_t> candidates;
      for (std::size_t v = 0; v < nodes; ++v) {
        if (v != thief && !ns[v].queue.empty()) candidates.push_back(v);
      }
      if (candidates.empty()) return false;
      victim = candidates[next_rand() % candidates.size()];
      group = ns[victim].queue.back();
    } else {
      // LPT-style selection: among every profitable (victim, group) pair,
      // take the group worth the most net simulated time to the thief —
      // compute gained minus migration cost. Big subtrees are the urgent
      // candidates (their steal window closes as soon as the victim's
      // FIFO reaches them, and moving one frees its victim to turn thief
      // in cascade), and the locality bias enters through the cost term —
      // owned groups ship descriptors instead of coefficients, so at
      // comparable size the owned group wins — rather than a hard
      // owned-first rule that would trade balance for locality.
      SimTime best = SimTime::seconds(-1e300);
      SimTime best_owned_net = SimTime::seconds(-1e300);
      std::size_t owned_victim = nodes;
      std::size_t owned_group = sizes.size();
      for (std::size_t v = 0; v < nodes; ++v) {
        if (v == thief || ns[v].queue.empty()) continue;
        for (const std::size_t g : ns[v].queue) {
          const bool owned = owned_by(g, thief);
          if (!profitable(v, g, owned)) continue;
          const SimTime net =
              SimTime::seconds(est * static_cast<double>(sizes[g])) -
              steal_cost(g, owned);
          if (net > best) {
            best = net;
            victim = v;
            group = g;
          }
          if (owned && net > best_owned_net) {
            best_owned_net = net;
            owned_victim = v;
            owned_group = g;
          }
        }
      }
      if (victim == nodes) return false;
      // Bounded owned preference: take the best owned candidate instead
      // of the overall best when it is worth at least half as much — the
      // descriptor-only migration is preferred, but never at more than a
      // 2x sacrifice in compute gained.
      if (owned_victim != nodes &&
          best_owned_net.sec() >= 0.5 * best.sec()) {
        victim = owned_victim;
        group = owned_group;
      }
    }
    ++out.steals.attempts;

    // Profitability: the thief must finish the group before the victim
    // would drain its whole queue — that is when the migration shortens
    // the victim's projected finish instead of just shuffling work. Owned
    // groups move descriptors only — their coefficient blocks are already
    // local.
    NodeState& vic = ns[victim];
    const SimTime victim_done =
        vic.t + SimTime::seconds(est * static_cast<double>(vic.pending));
    const bool owned = owned_by(group, thief);
    const double bytes = static_cast<double>(sizes[group]) * msg_bytes *
                         (owned ? policy.owned_bytes_fraction : 1.0);
    const SimTime cost = steal_cost(group, owned);
    const SimTime thief_done = thief_finish(me, group, owned);
    if (!(thief_done < victim_done)) return false;

    // Commit: move the group and charge the migration on the thief's
    // clock. The request round trip (2 latencies) and the transfer itself
    // land as kComm spans chained into the thief's causal timeline, so
    // mh_trace_analyze attributes migration cost like any other phase.
    vic.queue.erase(std::find(vic.queue.begin(), vic.queue.end(), group));
    vic.pending -= sizes[group];
    const NodeTracer tracer = make_tracer(me.cfg, me.track);
    const SimTime request_done = me.t + config.message_latency +
                                 config.message_latency;
    const std::uint64_t req = tracer.span(
        "steal", obs::Category::kComm, me.t, request_done, {me.chain, 0},
        {{"victim", static_cast<double>(victim)},
         {"group", static_cast<double>(group)},
         {"tasks", static_cast<double>(sizes[group])}});
    const std::uint64_t mig = tracer.span(
        "migrate", obs::Category::kComm, request_done, me.t + cost,
        {req != 0 ? req : me.chain, 0},
        {{"bytes", bytes}, {"owned", owned ? 1.0 : 0.0}});
    if (mig != 0) {
      me.chain = mig;
    } else if (req != 0) {
      me.chain = req;
    }
    me.breakdown.comm += cost;
    me.t += cost;
    me.queue.push_back(group);
    me.pending += sizes[group];
    ++out.steals.steals;
    if (owned) ++out.steals.owned_steals;
    out.steals.migrated_tasks += sizes[group];
    out.steals.migrated_bytes += bytes;
    out.steals.migration_time += cost;
    return true;
  };

  while (true) {
    // Idle (drained) nodes steal before the next group runs, earliest
    // clock first; each success can unblock further steals, so loop until
    // no idle node finds a profitable migration.
    bool progress = true;
    while (progress && out.steals.steals < cap) {
      progress = false;
      std::vector<std::size_t> idle;
      for (std::size_t i = 0; i < nodes; ++i) {
        if (ns[i].queue.empty()) idle.push_back(i);
      }
      std::sort(idle.begin(), idle.end(),
                [&](std::size_t a, std::size_t b) {
                  if (ns[a].t != ns[b].t) return ns[a].t < ns[b].t;
                  return a < b;
                });
      for (const std::size_t i : idle) {
        if (attempt_steal(i)) {
          progress = true;
          break;
        }
      }
    }
    // Run the next queued group on the node with the earliest clock.
    std::size_t next = nodes;
    for (std::size_t i = 0; i < nodes; ++i) {
      if (!ns[i].queue.empty() && (next == nodes || ns[i].t < ns[next].t)) {
        next = i;
      }
    }
    if (next == nodes) break;
    NodeState& n = ns[next];
    const std::size_t g = n.queue.front();
    n.queue.pop_front();
    std::uint64_t last = 0;
    const SimTime dur = node_run_time(workload, sizes[g], n.cfg,
                                      &n.breakdown, n.track, &last, n.t,
                                      n.chain);
    if (last != 0) n.chain = last;
    n.t += dur;
    n.pending -= sizes[g];
    out.executed[next] += sizes[g];
    publish_health(n.t.sec());
  }

  // Comm tails and result assembly. load_imbalance reports the *achieved*
  // balance (post-migration); slowest_node_comm folds in any migration
  // cost the slowest node paid as a thief.
  result.load_imbalance = imbalance(out.executed);
  for (std::size_t i = 0; i < nodes; ++i) {
    NodeState& n = ns[i];
    const std::size_t tasks = out.executed[i];
    SimTime total = n.t;
    if (tasks > 0) {
      const double msgs =
          static_cast<double>(tasks) * workload.remote_fraction;
      const SimTime comm =
          SimTime::seconds(msgs * (config.message_latency.sec() +
                                   msg_bytes / config.interconnect_bandwidth));
      make_tracer(n.cfg, n.track)
          .span("comm", obs::Category::kComm, n.t, n.t + comm, {n.chain, 0});
      n.breakdown.comm += comm;
      total = n.t + comm;
    }
    result.node_times.push_back(total);
    if (total > result.makespan) {
      result.makespan = total;
      result.slowest_node_compute = total - n.breakdown.comm;
      result.slowest_node_comm = n.breakdown.comm;
      result.slowest_breakdown = n.breakdown;
    }
  }
  publish_health(result.makespan.sec());
  return out;
}

}  // namespace mh::cluster
