#include "clustersim/cluster.hpp"

#include <algorithm>

#include "common/diagnostics.hpp"
#include "runtime/dispatch.hpp"

namespace mh::cluster {
namespace {

// Span sink for one node's phase track; a null session makes every call a
// no-op so the simulation paths need no guards.
struct NodeTracer {
  obs::TraceSession* session = nullptr;
  std::uint32_t phases = 0;

  void span(const char* name, obs::Category cat, SimTime start,
            SimTime end) const {
    if (session != nullptr && end > start) {
      session->record_sim(phases, name, cat, start, end);
    }
  }
};

NodeTracer make_tracer(const ClusterConfig& config,
                       const std::string& node_track) {
  NodeTracer tracer;
  tracer.session = config.trace != nullptr ? config.trace
                                           : obs::TraceSession::current();
  if (tracer.session != nullptr) {
    tracer.phases = tracer.session->track(obs::ClockDomain::kSim,
                                          node_track + "/phases");
  }
  return tracer;
}

// Build the descriptor batch for `count` tasks, assigning still-untouched
// operator blocks (device-cache misses) to the earliest tasks.
std::vector<gpu::GpuTaskDesc> make_batch(const Workload& workload,
                                         std::size_t count,
                                         std::size_t& remaining_new_blocks) {
  std::vector<gpu::GpuTaskDesc> batch(count);
  const std::size_t touched = workload.shape.steps();
  for (auto& desc : batch) {
    desc.shape = workload.shape;
    desc.h_blocks_touched = touched;
    desc.h_blocks_new = std::min(touched, remaining_new_blocks);
    remaining_new_blocks -= desc.h_blocks_new;
  }
  return batch;
}

// GPU device-memory feasibility: input tree share + write-once cache.
bool gpu_fits(const Workload& workload, std::size_t tasks,
              const ClusterConfig& config, std::string* note) {
  const double cache_bytes = static_cast<double>(workload.unique_h_blocks) *
                             workload.shape.h_block_bytes();
  const double data_bytes =
      static_cast<double>(tasks) * workload.gpu_bytes_per_task;
  if (cache_bytes + data_bytes > config.node.device.memory_bytes) {
    if (note != nullptr) {
      *note = "data per node too large for the GPU RAM";
    }
    return false;
  }
  return true;
}

void record_batch(NodeBreakdown* bd, const NodeTracer& tracer,
                  const gpu::BatchTiming& timing) {
  if (bd != nullptr) {
    bd->host_data += timing.host_prep + timing.host_post;
    bd->dispatch += timing.dispatch;
    bd->transfers += timing.transfer_in + timing.transfer_out;
    bd->gpu_kernels += timing.kernel_span;
  }
  // Phase spans laid out back-to-back in data-path order (Figure 3); the
  // device's own stream tracks carry the exact per-kernel timing.
  SimTime t = timing.start;
  tracer.span("preprocess", obs::Category::kPreprocess, t,
              t + timing.host_prep);
  t += timing.host_prep;
  tracer.span("dispatch", obs::Category::kBatchFlush, t, t + timing.dispatch);
  t += timing.dispatch;
  tracer.span("h2d", obs::Category::kTransfer, t, t + timing.transfer_in);
  t += timing.transfer_in;
  tracer.span("kernels", obs::Category::kGpuKernel, t, t + timing.kernel_span);
  t += timing.kernel_span;
  tracer.span("d2h", obs::Category::kTransfer, t, t + timing.transfer_out);
  tracer.span("postprocess", obs::Category::kPostprocess,
              timing.total_done - timing.host_post, timing.total_done);
}

SimTime gpu_only_node_time(const Workload& workload, std::size_t tasks,
                           const ClusterConfig& config,
                           NodeBreakdown* breakdown,
                           const NodeTracer& tracer,
                           const std::string& node_track) {
  gpu::GpuDevice device(config.node.device, config.node.gpu_streams);
  if (tracer.session != nullptr) {
    device.set_trace(tracer.session, node_track + "/gpu/");
  }
  gpu::BatchConfig gcfg = config.gpu;
  gcfg.streams = config.node.gpu_streams;
  std::size_t remaining_new = workload.unique_h_blocks;
  SimTime t = SimTime::zero();
  std::size_t left = tasks;
  while (left > 0) {
    const std::size_t count = std::min(left, config.batch_size);
    const auto batch = make_batch(workload, count, remaining_new);
    const auto timing = gpu::run_apply_batch(device, nullptr, batch, gcfg, t);
    record_batch(breakdown, tracer, timing);
    t = timing.total_done;
    left -= count;
  }
  return t;
}

SimTime cpu_only_node_time(const Workload& workload, std::size_t tasks,
                           const ClusterConfig& config) {
  return cpu_batch_time(config.node.cpu, workload.shape, tasks,
                        config.cpu_compute_threads,
                        config.rank_reduce ? config.rank_fraction : 1.0);
}

SimTime hybrid_node_time(const Workload& workload, std::size_t tasks,
                         const ClusterConfig& config,
                         NodeBreakdown* breakdown, const NodeTracer& tracer,
                         const std::string& node_track) {
  gpu::GpuDevice device(config.node.device, config.node.gpu_streams);
  if (tracer.session != nullptr) {
    device.set_trace(tracer.session, node_track + "/gpu/");
  }
  gpu::BatchConfig gcfg = config.gpu;
  gcfg.streams = config.node.gpu_streams;

  // Split fraction: explicit, or k* = n/(m+n) from the model's own rates
  // measured on a probe batch (mirrors the paper: the developer knows the
  // relative CPU/GPU performance of the operator).
  double frac = config.cpu_fraction;
  if (frac < 0.0) {
    const std::size_t probe = std::min<std::size_t>(
        std::max<std::size_t>(tasks, 1), config.batch_size);
    const SimTime m = cpu_batch_time(
        config.node.cpu, workload.shape, probe, config.cpu_compute_threads,
        config.rank_reduce ? config.rank_fraction : 1.0);
    gpu::GpuDevice probe_dev(config.node.device, config.node.gpu_streams);
    std::size_t probe_new = 0;  // steady-state: cache is warm
    const auto probe_batch = make_batch(workload, probe, probe_new);
    const SimTime n =
        gpu::run_apply_batch(probe_dev, nullptr, probe_batch, gcfg,
                             SimTime::zero())
            .elapsed();
    frac = rt::optimal_cpu_fraction(m.sec(), n.sec());
  }

  std::size_t remaining_new = workload.unique_h_blocks;
  SimTime t = SimTime::zero();
  std::size_t left = tasks;
  while (left > 0) {
    const std::size_t count = std::min(left, config.batch_size);
    const std::size_t ncpu = rt::cpu_share(count, frac);
    const std::size_t ngpu = count - ncpu;
    const SimTime cpu_part =
        cpu_batch_time(config.node.cpu, workload.shape, ncpu,
                       config.cpu_compute_threads,
                       config.rank_reduce ? config.rank_fraction : 1.0);
    const SimTime cpu_done = t + cpu_part;
    if (breakdown != nullptr) breakdown->cpu_compute += cpu_part;
    if (ncpu > 0) {
      tracer.span("cpu-compute", obs::Category::kCpuCompute, t, cpu_done);
    }
    SimTime gpu_done = t;
    if (ngpu > 0) {
      const auto batch = make_batch(workload, ngpu, remaining_new);
      const auto timing = gpu::run_apply_batch(device, nullptr, batch, gcfg, t);
      record_batch(breakdown, tracer, timing);
      gpu_done = timing.total_done;
    }
    t = max(cpu_done, gpu_done);
    left -= count;
  }
  return t;
}

}  // namespace

SimTime node_run_time(const Workload& workload, std::size_t tasks,
                      const ClusterConfig& config, NodeBreakdown* breakdown,
                      const std::string& node_track) {
  if (tasks == 0) return SimTime::zero();
  const NodeTracer tracer = make_tracer(config, node_track);
  switch (config.mode) {
    case ComputeMode::kCpuOnly: {
      const SimTime t = cpu_only_node_time(workload, tasks, config);
      if (breakdown != nullptr) breakdown->cpu_compute += t;
      tracer.span("cpu-compute", obs::Category::kCpuCompute, SimTime::zero(),
                  t);
      return t;
    }
    case ComputeMode::kGpuOnly:
      return gpu_only_node_time(workload, tasks, config, breakdown, tracer,
                                node_track);
    case ComputeMode::kHybrid:
      return hybrid_node_time(workload, tasks, config, breakdown, tracer,
                              node_track);
  }
  MH_CHECK(false, "unknown compute mode");
  return SimTime::zero();
}

ClusterResult run_cluster_apply(const Workload& workload,
                                const NodeLoads& loads,
                                const ClusterConfig& config) {
  MH_CHECK(loads.size() == config.nodes, "load vector / node count mismatch");
  MH_CHECK(config.nodes >= 1, "need at least one node");

  ClusterResult result;
  result.load_imbalance = imbalance(loads);

  // Feasibility: every node's GPU data must fit (GPU and hybrid modes).
  if (config.mode != ComputeMode::kCpuOnly) {
    const std::size_t worst = *std::max_element(loads.begin(), loads.end());
    std::string note;
    if (!gpu_fits(workload, worst, config, &note)) {
      result.feasible = false;
      result.note = note;
      return result;
    }
  }

  const double msg_bytes = workload.shape.tensor_bytes();
  for (std::size_t nodei = 0; nodei < loads.size(); ++nodei) {
    const std::size_t tasks = loads[nodei];
    const std::string node_track = "node" + std::to_string(nodei);
    NodeBreakdown breakdown;
    const SimTime compute =
        node_run_time(workload, tasks, config, &breakdown, node_track);
    // Remote accumulations: latency-dominated small messages, overlapped
    // poorly with the tail of the computation (conservatively additive).
    const double msgs =
        static_cast<double>(tasks) * workload.remote_fraction;
    const SimTime comm =
        SimTime::seconds(msgs * (config.message_latency.sec() +
                                 msg_bytes / config.interconnect_bandwidth));
    make_tracer(config, node_track)
        .span("comm", obs::Category::kComm, compute, compute + comm);
    const SimTime total = compute + comm;
    result.node_times.push_back(total);
    if (total > result.makespan) {
      result.makespan = total;
      result.slowest_node_compute = compute;
      result.slowest_node_comm = comm;
      breakdown.comm = comm;
      result.slowest_breakdown = breakdown;
    }
  }
  return result;
}

}  // namespace mh::cluster
