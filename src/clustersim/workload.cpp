#include "clustersim/workload.hpp"

#include <algorithm>
#include <cmath>

#include "common/diagnostics.hpp"
#include "common/rng.hpp"

namespace mh::cluster {

std::vector<std::size_t> power_law_groups(std::size_t tasks,
                                          std::size_t ngroups, double skew,
                                          std::uint64_t seed) {
  MH_CHECK(ngroups >= 1, "need at least one group");
  MH_CHECK(tasks >= ngroups, "fewer tasks than groups");
  MH_CHECK(skew > 0.0, "skew must be positive");
  Rng rng(seed);
  // Draw Pareto-ish weights, normalize to `tasks` with one task minimum.
  std::vector<double> weights(ngroups);
  double total = 0.0;
  for (double& w : weights) {
    const double u = std::max(1e-12, rng.next_double());
    w = std::pow(u, -1.0 / skew);  // heavier tail for smaller skew
    total += w;
  }
  std::vector<std::size_t> sizes(ngroups, 1);
  std::size_t assigned = ngroups;
  for (std::size_t g = 0; g < ngroups; ++g) {
    const auto extra = static_cast<std::size_t>(
        weights[g] / total * static_cast<double>(tasks - ngroups));
    sizes[g] += extra;
    assigned += extra;
  }
  // Distribute the rounding remainder over the largest groups.
  std::size_t g = 0;
  while (assigned < tasks) {
    ++sizes[g % ngroups];
    ++assigned;
    ++g;
  }
  return sizes;
}

std::size_t estimate_unique_blocks(std::size_t terms, std::size_t levels,
                                   std::int64_t max_disp) {
  MH_CHECK(max_disp >= 0, "negative displacement cap");
  return terms * levels * static_cast<std::size_t>(2 * max_disp + 1);
}

Workload make_workload(std::string name, gpu::ApplyTaskShape shape,
                       std::size_t tasks, std::size_t ngroups, double skew,
                       std::uint64_t seed) {
  Workload w;
  w.name = std::move(name);
  w.shape = shape;
  w.tasks = tasks;
  w.group_sizes = power_law_groups(tasks, ngroups, skew, seed);
  w.unique_h_blocks = estimate_unique_blocks(shape.terms, 10, 4);
  // Default device-resident footprint per task: tasks stream through in
  // batches, so only a fraction of their data (the node's tree share plus
  // staging buffers) stays resident. Experiments with a known feasibility
  // boundary override this (Tables III/IV).
  w.gpu_bytes_per_task = 0.2 * shape.tensor_bytes();
  return w;
}

}  // namespace mh::cluster
