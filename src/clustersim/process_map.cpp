#include "clustersim/process_map.hpp"

#include <algorithm>

#include "common/diagnostics.hpp"
#include "common/hash.hpp"

namespace mh::cluster {

NodeLoads even_map(std::size_t total_tasks, std::size_t nodes) {
  MH_CHECK(nodes >= 1, "need at least one node");
  NodeLoads loads(nodes, total_tasks / nodes);
  // Distribute the remainder one task at a time, like round-robin would.
  for (std::size_t i = 0; i < total_tasks % nodes; ++i) ++loads[i];
  return loads;
}

NodeLoads locality_map(const std::vector<std::size_t>& group_sizes,
                       std::size_t nodes, std::uint64_t seed) {
  MH_CHECK(nodes >= 1, "need at least one node");
  NodeLoads loads(nodes, 0);
  for (std::size_t g = 0; g < group_sizes.size(); ++g) {
    const std::uint64_t h = hash_combine(mix64(seed), mix64(g));
    loads[h % nodes] += group_sizes[g];
  }
  return loads;
}

NodeLoads lpt_map(const std::vector<std::size_t>& group_sizes,
                  std::size_t nodes) {
  MH_CHECK(nodes >= 1, "need at least one node");
  std::vector<std::size_t> order(group_sizes.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return group_sizes[a] > group_sizes[b];
  });
  NodeLoads loads(nodes, 0);
  for (std::size_t g : order) {
    auto least = std::min_element(loads.begin(), loads.end());
    *least += group_sizes[g];
  }
  return loads;
}

double imbalance(const NodeLoads& loads) {
  MH_CHECK(!loads.empty(), "empty load vector");
  std::size_t total = 0, worst = 0;
  for (std::size_t l : loads) {
    total += l;
    worst = std::max(worst, l);
  }
  if (total == 0) return 1.0;
  const double ideal =
      static_cast<double>(total) / static_cast<double>(loads.size());
  return static_cast<double>(worst) / ideal;
}

}  // namespace mh::cluster
