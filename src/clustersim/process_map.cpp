#include "clustersim/process_map.hpp"

#include <algorithm>
#include <queue>
#include <utility>

#include "common/diagnostics.hpp"
#include "common/hash.hpp"

namespace mh::cluster {

NodeLoads GroupMap::loads(const std::vector<std::size_t>& group_sizes) const {
  MH_CHECK(node_of.size() == group_sizes.size(),
           "group map / group size arity mismatch");
  NodeLoads out(nodes, 0);
  for (std::size_t g = 0; g < node_of.size(); ++g) {
    MH_CHECK(node_of[g] < nodes, "group assigned to a node out of range");
    out[node_of[g]] += group_sizes[g];
  }
  return out;
}

NodeLoads even_map(std::size_t total_tasks, std::size_t nodes) {
  MH_CHECK(nodes >= 1, "need at least one node");
  NodeLoads loads(nodes, total_tasks / nodes);
  // Distribute the remainder one task at a time, like round-robin would.
  for (std::size_t i = 0; i < total_tasks % nodes; ++i) ++loads[i];
  return loads;
}

GroupMap locality_group_map(const std::vector<std::size_t>& group_sizes,
                            std::size_t nodes, std::uint64_t seed) {
  MH_CHECK(nodes >= 1, "need at least one node");
  GroupMap map;
  map.nodes = nodes;
  map.node_of.resize(group_sizes.size());
  for (std::size_t g = 0; g < group_sizes.size(); ++g) {
    const std::uint64_t h = hash_combine(mix64(seed), mix64(g));
    map.node_of[g] = h % nodes;
  }
  return map;
}

NodeLoads locality_map(const std::vector<std::size_t>& group_sizes,
                       std::size_t nodes, std::uint64_t seed) {
  return locality_group_map(group_sizes, nodes, seed).loads(group_sizes);
}

GroupMap lpt_group_map(const std::vector<std::size_t>& group_sizes,
                       std::size_t nodes) {
  MH_CHECK(nodes >= 1, "need at least one node");
  std::vector<std::size_t> order(group_sizes.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return group_sizes[a] > group_sizes[b];
  });
  // Min-heap of (load, node): a rescan with min_element would be O(G·N),
  // quadratic for the steal benches' large group counts. Ties break on the
  // lowest node index — the same choice the first-minimum scan made, so
  // assignments are bit-identical to the old implementation.
  using Slot = std::pair<std::size_t, std::size_t>;
  std::priority_queue<Slot, std::vector<Slot>, std::greater<Slot>> heap;
  for (std::size_t n = 0; n < nodes; ++n) heap.emplace(0, n);
  GroupMap map;
  map.nodes = nodes;
  map.node_of.resize(group_sizes.size());
  for (std::size_t g : order) {
    auto [load, n] = heap.top();
    heap.pop();
    map.node_of[g] = n;
    heap.emplace(load + group_sizes[g], n);
  }
  return map;
}

NodeLoads lpt_map(const std::vector<std::size_t>& group_sizes,
                  std::size_t nodes) {
  return lpt_group_map(group_sizes, nodes).loads(group_sizes);
}

double imbalance(const NodeLoads& loads) {
  MH_CHECK(!loads.empty(), "empty load vector");
  std::size_t total = 0, worst = 0;
  for (std::size_t l : loads) {
    total += l;
    worst = std::max(worst, l);
  }
  if (total == 0) return 1.0;
  const double ideal =
      static_cast<double>(total) / static_cast<double>(loads.size());
  return static_cast<double>(worst) / ideal;
}

}  // namespace mh::cluster
