// Cost model of one Titan compute node's CPU side: a 16-core AMD Opteron
// 6200 (Interlagos) at 2 GHz with 16 MB aggregate L2 (paper §III).
//
// Three effects the paper's tables hinge on are modeled explicitly:
//   1. per-core GEMM rate: ~6 GFLOPS for small 3-D tensors (paper §II-C),
//      declining once a task's working set spills per-core cache;
//   2. thread scaling: sub-linear with a contention coefficient, and
//      saturating around 10 threads when the aggregate working set exceeds
//      the 16 MB L2 (Table V/VI discussion);
//   3. batch quantization: a batch of b tasks on t worker threads takes
//      ceil(b/t) task-rounds — with small per-node batches this
//      underutilization is what makes the hybrid runs beat the "optimal"
//      overlap prediction in Tables V and VI.
#pragma once

#include <cstddef>

#include "common/sim_time.hpp"
#include "gpusim/kernels.hpp"  // ApplyTaskShape

namespace mh::cluster {

struct CpuSpec {
  std::size_t cores = 16;
  double peak_flops_per_core = 6.0e9;  ///< hand-tuned mtxmq on Interlagos
  double l2_bytes = 16.0 * 1024 * 1024;  ///< aggregate L2 per node
  double per_core_cache_bytes = 1.0 * 1024 * 1024;  ///< effective per core
  double contention = 0.08;  ///< thread-scaling efficiency loss per thread
  std::size_t memory_saturation_threads = 10;  ///< cap when L2 overflows

  static CpuSpec titan_interlagos() { return CpuSpec{}; }
};

/// Approximate per-task working set: source + result + temporaries plus the
/// operator blocks streamed through the caches.
double task_working_set_bytes(const gpu::ApplyTaskShape& shape);

/// Effective per-core flop rate for this task shape (cache-decline model).
double per_core_rate(const CpuSpec& spec, const gpu::ApplyTaskShape& shape);

/// One task on one core. `rank_fraction` scales flops for the paper's §II-D
/// rank reduction (kred/k, 1.0 = full rank).
SimTime cpu_task_time(const CpuSpec& spec, const gpu::ApplyTaskShape& shape,
                      double rank_fraction = 1.0);

/// Parallel speedup of `threads` workers on this shape: contention-limited
/// and L2-saturation-capped.
double thread_speedup(const CpuSpec& spec, const gpu::ApplyTaskShape& shape,
                      std::size_t threads);

/// A batch of `tasks` independent tasks on `threads` workers, including the
/// ceil-quantization of task rounds.
SimTime cpu_batch_time(const CpuSpec& spec, const gpu::ApplyTaskShape& shape,
                       std::size_t tasks, std::size_t threads,
                       double rank_fraction = 1.0);

}  // namespace mh::cluster
