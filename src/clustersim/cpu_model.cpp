#include "clustersim/cpu_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/diagnostics.hpp"

namespace mh::cluster {

double task_working_set_bytes(const gpu::ApplyTaskShape& shape) {
  // Source, result, and one ping-pong temporary, plus the h blocks of all
  // terms streamed during the task.
  return 3.0 * shape.tensor_bytes() +
         static_cast<double>(shape.terms) * shape.h_block_bytes();
}

double per_core_rate(const CpuSpec& spec, const gpu::ApplyTaskShape& shape) {
  // Rate declines as the per-task working set outgrows the per-core cache
  // share (paper: "for higher-dimensional tensors the CPU implementation is
  // less efficient, since tensors overflow L2").
  const double ws = task_working_set_bytes(shape);
  return spec.peak_flops_per_core / (1.0 + ws / spec.per_core_cache_bytes);
}

SimTime cpu_task_time(const CpuSpec& spec, const gpu::ApplyTaskShape& shape,
                      double rank_fraction) {
  MH_CHECK(rank_fraction > 0.0 && rank_fraction <= 1.0,
           "rank fraction out of (0, 1]");
  return SimTime::seconds(shape.flops() * rank_fraction /
                          per_core_rate(spec, shape));
}

double thread_speedup(const CpuSpec& spec, const gpu::ApplyTaskShape& shape,
                      std::size_t threads) {
  MH_CHECK(threads >= 1, "need at least one thread");
  std::size_t effective = std::min(threads, spec.cores);
  // Memory saturation: once the aggregate working set of concurrently
  // running tasks exceeds L2, extra threads stop helping.
  const double ws = task_working_set_bytes(shape);
  if (ws * static_cast<double>(spec.cores) > spec.l2_bytes) {
    effective = std::min(effective, spec.memory_saturation_threads);
  }
  const double t = static_cast<double>(effective);
  return t / (1.0 + spec.contention * (t - 1.0));
}

SimTime cpu_batch_time(const CpuSpec& spec, const gpu::ApplyTaskShape& shape,
                       std::size_t tasks, std::size_t threads,
                       double rank_fraction) {
  if (tasks == 0) return SimTime::zero();
  const SimTime per_task = cpu_task_time(spec, shape, rank_fraction);
  const double speedup = thread_speedup(spec, shape, threads);
  const auto concurrency = static_cast<double>(std::min(threads, spec.cores));
  // Tasks execute in rounds of `concurrency`; each round's wall time is one
  // task slowed by the contention/saturation factor concurrency/speedup.
  // A partial last round leaves cores idle — the underutilization that makes
  // small per-node batches (Tables V-VI) beat the "optimal" overlap formula.
  const double rounds = std::ceil(static_cast<double>(tasks) / concurrency);
  return per_task * (rounds * concurrency / speedup);
}

}  // namespace mh::cluster
