#include "serve/serve.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <deque>
#include <limits>
#include <optional>
#include <queue>
#include <string>
#include <string_view>

#include "common/diagnostics.hpp"
#include "common/hash.hpp"
#include "common/rng.hpp"
#include "obs/telemetry.hpp"
#include "runtime/deadline.hpp"

namespace mh::serve {

const char* request_class_name(RequestClass c) noexcept {
  switch (c) {
    case RequestClass::kApply: return "apply";
    case RequestClass::kCompress: return "compress";
    case RequestClass::kReconstruct: return "reconstruct";
  }
  return "apply";
}

namespace {

struct Request {
  SimTime arrival;
  SimTime deadline;
  std::uint32_t tenant = 0;
};

struct Event {
  enum Kind : std::uint8_t {
    kArrival,        ///< arg = tenant
    kFlushCheck,     ///< arg = request class
    kWorkerDone,     ///< arg = worker
    kRankRestart,    ///< arg = rank
    kTelemetryTick,  ///< arg unused
  };
  double at = 0.0;
  std::uint64_t seq = 0;  ///< insertion order: the deterministic tie-break
  Kind kind = kArrival;
  std::size_t arg = 0;
};

struct EventAfter {
  bool operator()(const Event& a, const Event& b) const noexcept {
    if (a.at != b.at) return a.at > b.at;
    return a.seq > b.seq;
  }
};

/// The whole server as one discrete-event simulation. Single-threaded and
/// seeded, so every stat in ServeResult is bit-reproducible.
class Sim {
 public:
  explicit Sim(const ServeConfig& config)
      : cfg_(config),
        faults_(config.faults != nullptr ? config.faults
                                         : &fault::FaultInjector::global()),
        metrics_(config.metrics != nullptr ? *config.metrics
                                           : obs::MetricsRegistry::global()) {
    MH_CHECK(!cfg_.tenants.empty(), "serve needs at least one tenant");
    MH_CHECK(cfg_.workers >= 1, "serve needs at least one worker");
    MH_CHECK(cfg_.backend_ranks >= 1, "serve needs at least one rank");
    MH_CHECK(cfg_.max_batch >= 1, "batch cap must be positive");
    tenants_.resize(cfg_.tenants.size());
    for (std::size_t t = 0; t < tenants_.size(); ++t) {
      Tenant& ten = tenants_[t];
      const TenantSpec& spec = cfg_.tenants[t];
      ten.rng = Rng(hash_combine(cfg_.seed, 0x7e4a7c15u + t));
      ten.tokens = spec.burst;
      // Normalized class mix as a CDF for the per-request class draw.
      double total = 0.0;
      for (double m : spec.mix) total += std::max(m, 0.0);
      if (total <= 0.0) total = 1.0;
      double cum = 0.0;
      for (std::size_t c = 0; c < kRequestClasses; ++c) {
        cum += std::max(spec.mix[c], 0.0) / total;
        ten.mix_cdf[c] = cum;
      }
      ten.mix_cdf[kRequestClasses - 1] = 1.0;
      ten.stats.name = spec.name;
      const obs::Labels labels{{"tenant", spec.name}};
      ten.m_latency = &metrics_.histogram(
          "mh_serve_latency_ms", "per-tenant served request latency", labels);
      ten.m_ok = &metrics_.counter("mh_serve_requests_total",
                                   "terminal request outcomes",
                                   {{"tenant", spec.name}, {"outcome", "ok"}});
      ten.m_shed_rate = &metrics_.counter(
          "mh_serve_requests_total", {},
          {{"tenant", spec.name}, {"outcome", "shed_rate_limit"}});
      ten.m_shed_queue = &metrics_.counter(
          "mh_serve_requests_total", {},
          {{"tenant", spec.name}, {"outcome", "shed_queue_full"}});
      ten.m_error = &metrics_.counter(
          "mh_serve_requests_total", {},
          {{"tenant", spec.name}, {"outcome", "backend_error"}});
    }
    workers_.resize(cfg_.workers);
    for (std::size_t w = 0; w < workers_.size(); ++w) {
      workers_[w].rank = w % cfg_.backend_ranks;
    }
    alive_.assign(cfg_.backend_ranks, true);
    if (cfg_.health != nullptr) {
      tel_.emplace(tenants_.size());
    }
  }

  ServeResult run() {
    // Seed the event horizon: one first arrival per tenant, one telemetry
    // tick when a health plane is attached.
    for (std::size_t t = 0; t < tenants_.size(); ++t) {
      schedule_next_arrival(t, 0.0);
    }
    if (tel_) schedule(cfg_.telemetry_tick.sec(), Event::kTelemetryTick, 0);

    while (!events_.empty()) {
      const Event ev = events_.top();
      events_.pop();
      const double now = ev.at;
      switch (ev.kind) {
        case Event::kArrival: on_arrival(ev.arg, now); break;
        case Event::kFlushCheck: try_dispatch(now); break;
        case Event::kWorkerDone: on_worker_done(ev.arg, now); break;
        case Event::kRankRestart: on_rank_restart(ev.arg, now); break;
        case Event::kTelemetryTick: on_telemetry(now); break;
      }
    }

    return finish();
  }

 private:
  struct Tenant {
    Rng rng{0};
    double tokens = 0.0;
    SimTime last_refill;
    std::array<double, kRequestClasses> mix_cdf{};
    std::array<std::deque<Request>, kRequestClasses> queue;
    std::size_t queued = 0;  ///< across the three class FIFOs
    // Telemetry window accumulators (reset every tick).
    std::size_t win_responses = 0;
    std::size_t win_bad = 0;  ///< SLO misses + backend errors this window
    TenantStats stats;
    obs::Histogram* m_latency = nullptr;
    obs::Counter* m_ok = nullptr;
    obs::Counter* m_shed_rate = nullptr;
    obs::Counter* m_shed_queue = nullptr;
    obs::Counter* m_error = nullptr;
  };

  struct Worker {
    std::size_t rank = 0;
    bool busy = false;
    RequestClass cls = RequestClass::kApply;
    std::vector<Request> batch;
  };

  void schedule(double at, Event::Kind kind, std::size_t arg) {
    events_.push(Event{at, seq_++, kind, arg});
  }

  void schedule_next_arrival(std::size_t t, double now) {
    const TenantSpec& spec = cfg_.tenants[t];
    if (spec.arrival_rps <= 0.0) return;
    // Exponential interarrival: the open-loop Poisson stream.
    const double u = tenants_[t].rng.next_double();
    const double dt = -std::log(1.0 - u) / spec.arrival_rps;
    const double at = now + dt;
    if (at <= cfg_.duration.sec()) schedule(at, Event::kArrival, t);
  }

  RequestClass draw_class(Tenant& ten) {
    const double u = ten.rng.next_double();
    for (std::size_t c = 0; c < kRequestClasses; ++c) {
      if (u < ten.mix_cdf[c]) return static_cast<RequestClass>(c);
    }
    return RequestClass::kReconstruct;
  }

  void on_arrival(std::size_t t, double now) {
    Tenant& ten = tenants_[t];
    const TenantSpec& spec = cfg_.tenants[t];
    schedule_next_arrival(t, now);
    ++ten.stats.offered;
    const RequestClass cls = draw_class(ten);
    // Token bucket refill since the last arrival.
    const SimTime snow = SimTime::seconds(now);
    ten.tokens = std::min(
        spec.burst,
        ten.tokens + (snow - ten.last_refill).sec() * spec.rate_rps);
    ten.last_refill = snow;
    if (ten.tokens < 1.0) {
      ++ten.stats.shed_rate_limit;
      ten.m_shed_rate->inc();
      return;  // typed kShedRateLimit response, immediately
    }
    if (ten.queued >= spec.queue_cap) {
      ++ten.stats.shed_queue_full;
      ten.m_shed_queue->inc();
      return;  // typed kShedQueueFull response, immediately
    }
    ten.tokens -= 1.0;
    ++ten.stats.admitted;
    const std::size_t c = static_cast<std::size_t>(cls);
    ten.queue[c].push_back(
        Request{snow, snow + spec.slo, static_cast<std::uint32_t>(t)});
    ++ten.queued;
    ++pending_[c];
    if (pending_[c] >= cfg_.max_batch) {
      try_dispatch(now);
    } else {
      schedule_class_check(c, now);
    }
  }

  // --- flush policy ----------------------------------------------------

  double oldest_arrival(std::size_t c) const {
    double oldest = std::numeric_limits<double>::infinity();
    for (const Tenant& ten : tenants_) {
      if (!ten.queue[c].empty()) {
        oldest = std::min(oldest, ten.queue[c].front().arrival.sec());
      }
    }
    return oldest;
  }

  double earliest_deadline(std::size_t c) const {
    double earliest = std::numeric_limits<double>::infinity();
    for (const Tenant& ten : tenants_) {
      if (!ten.queue[c].empty()) {
        earliest = std::min(earliest, ten.queue[c].front().deadline.sec());
      }
    }
    return earliest;
  }

  /// Known-cost service estimate for the class's next batch.
  double service_estimate(std::size_t c) const {
    const std::size_t n = std::min(pending_[c], cfg_.max_batch);
    return cfg_.batch_setup[c].sec() +
           static_cast<double>(n) * cfg_.per_item[c].sec();
  }

  /// When the class's next batch must be dispatched (policy-dependent).
  double flush_due_at(std::size_t c) const {
    if (cfg_.policy == FlushPolicy::kTimer) {
      return oldest_arrival(c) + cfg_.flush_window.sec();
    }
    // The serving discipline: the same last-responsible-moment arithmetic
    // the BatchingEngine's deadline hook runs on the wall clock.
    return rt::deadline_flush_at(earliest_deadline(c), service_estimate(c),
                                 cfg_.deadline_margin.sec());
  }

  void schedule_class_check(std::size_t c, double now) {
    if (pending_[c] == 0) return;
    schedule(std::max(flush_due_at(c), now), Event::kFlushCheck, c);
  }

  // --- batching + service ----------------------------------------------

  std::size_t free_live_worker() const {
    for (std::size_t w = 0; w < workers_.size(); ++w) {
      if (!workers_[w].busy && alive_[workers_[w].rank]) return w;
    }
    return workers_.size();
  }

  /// Weighted round-robin batch formation across tenants: each visit takes
  /// up to round(weight) items from the tenant's class FIFO, and the
  /// cursor persists across batches — a hog tenant's backlog cannot
  /// starve the others (its surplus waits for its next turn).
  std::vector<Request> form_batch(std::size_t c) {
    std::vector<Request> batch;
    batch.reserve(std::min(pending_[c], cfg_.max_batch));
    std::size_t empty_visits = 0;
    while (batch.size() < cfg_.max_batch && pending_[c] > 0 &&
           empty_visits < tenants_.size()) {
      const std::size_t t = rr_[c];
      rr_[c] = (rr_[c] + 1) % tenants_.size();
      Tenant& ten = tenants_[t];
      if (ten.queue[c].empty()) {
        ++empty_visits;
        continue;
      }
      empty_visits = 0;
      const std::size_t quantum = static_cast<std::size_t>(
          std::max<long long>(1, std::llround(cfg_.tenants[t].weight)));
      for (std::size_t k = 0; k < quantum && !ten.queue[c].empty() &&
                              batch.size() < cfg_.max_batch;
           ++k) {
        batch.push_back(ten.queue[c].front());
        ten.queue[c].pop_front();
        --ten.queued;
        --pending_[c];
      }
    }
    return batch;
  }

  void try_dispatch(double now) {
    for (;;) {
      const std::size_t w = free_live_worker();
      if (w == workers_.size()) return;
      // Most urgent due class first (earliest front deadline).
      std::size_t pick = kRequestClasses;
      double pick_deadline = std::numeric_limits<double>::infinity();
      bool pick_size = false;
      for (std::size_t c = 0; c < kRequestClasses; ++c) {
        if (pending_[c] == 0) continue;
        const bool size_trigger = pending_[c] >= cfg_.max_batch;
        if (!size_trigger && now < flush_due_at(c)) continue;
        const double dl = earliest_deadline(c);
        if (dl < pick_deadline) {
          pick_deadline = dl;
          pick = c;
          pick_size = size_trigger;
        }
      }
      if (pick == kRequestClasses) return;
      dispatch(pick, pick_size, w, now);
      if (pending_[pick] > 0) schedule_class_check(pick, now);
    }
  }

  void dispatch(std::size_t c, bool size_trigger, std::size_t w, double now) {
    std::vector<Request> batch = form_batch(c);
    MH_CHECK(!batch.empty(), "dispatched an empty batch");
    ++stats_.batches;
    stats_.max_batch_seen = std::max(stats_.max_batch_seen, batch.size());
    if (size_trigger) {
      ++stats_.size_flushes;
    } else if (cfg_.policy == FlushPolicy::kDeadline) {
      ++stats_.deadline_flushes;
    } else {
      ++stats_.timer_flushes;
    }
    Worker& worker = workers_[w];
    // The send fault site models a backend rank dying mid-stream: the
    // whole batch gets typed error responses (no hang, no silent drop)
    // and the rank's capacity is gone until it restarts.
    if (faults_->armed() && faults_->should_fail(fault::FaultSite::kSend)) {
      if (alive_[worker.rank]) {
        alive_[worker.rank] = false;
        ++stats_.rank_deaths;
        schedule(now + cfg_.rank_restart.sec(), Event::kRankRestart,
                 worker.rank);
      }
      const double respond_at = now + cfg_.error_latency.sec();
      for (const Request& req : batch) {
        Tenant& ten = tenants_[req.tenant];
        ++ten.stats.backend_errors;
        ten.m_error->inc();
        ++ten.win_responses;
        ++ten.win_bad;
      }
      last_response_ = std::max(last_response_, respond_at);
      return;  // the worker stays free; its rank does not
    }
    const double service =
        cfg_.batch_setup[c].sec() +
        static_cast<double>(batch.size()) * cfg_.per_item[c].sec();
    worker.busy = true;
    worker.cls = static_cast<RequestClass>(c);
    worker.batch = std::move(batch);
    ++busy_workers_;
    schedule(now + service, Event::kWorkerDone, w);
  }

  void on_worker_done(std::size_t w, double now) {
    Worker& worker = workers_[w];
    for (const Request& req : worker.batch) {
      Tenant& ten = tenants_[req.tenant];
      const double latency_ms = (SimTime::seconds(now) - req.arrival).ms();
      ++ten.stats.completed;
      ten.m_ok->inc();
      ten.stats.latency_ms.observe(latency_ms);
      ten.m_latency->observe(latency_ms);
      ++ten.win_responses;
      if (SimTime::seconds(now) > req.deadline) {
        ++ten.stats.slo_misses;
        ++ten.win_bad;
      }
    }
    last_response_ = std::max(last_response_, now);
    worker.batch.clear();
    worker.busy = false;
    --busy_workers_;
    try_dispatch(now);
  }

  void on_rank_restart(std::size_t r, double now) {
    alive_[r] = true;
    ++stats_.rank_restarts;
    try_dispatch(now);
  }

  // --- telemetry -------------------------------------------------------

  void on_telemetry(double now) {
    for (std::size_t t = 0; t < tenants_.size(); ++t) {
      Tenant& ten = tenants_[t];
      const double burn =
          ten.win_responses > 0
              ? static_cast<double>(ten.win_bad) /
                    static_cast<double>(ten.win_responses)
              : 0.0;
      tel_->gauge(t, "mh_serve_slo_burn", burn);
      tel_->gauge(t, "mh_serve_queue_depth",
                  static_cast<double>(ten.queued));
      tel_->counter(t, "mh_serve_shed_total",
                    static_cast<double>(ten.stats.shed_rate_limit +
                                        ten.stats.shed_queue_full));
      tel_->counter(t, "mh_serve_completed_total",
                    static_cast<double>(ten.stats.completed));
      tel_->counter(t, "mh_serve_error_total",
                    static_cast<double>(ten.stats.backend_errors));
      ten.win_responses = 0;
      ten.win_bad = 0;
    }
    const auto events = cfg_.health->tick(tel_->collect(now), now);
    for (const obs::AlertEvent& ev : events) {
      if (ev.state == obs::AlertState::kFiring) ++stats_.alerts_fired;
      if (ev.state == obs::AlertState::kResolved) ++stats_.alerts_resolved;
    }
    // Keep ticking while the run is live, then a short grace so firing
    // alerts can observe clean windows and resolve.
    std::size_t queued = 0;
    for (const Tenant& ten : tenants_) queued += ten.queued;
    if (now < cfg_.duration.sec() || queued > 0 || busy_workers_ > 0) {
      schedule(now + cfg_.telemetry_tick.sec(), Event::kTelemetryTick, 0);
    } else if (grace_ticks_ > 0) {
      --grace_ticks_;
      schedule(now + cfg_.telemetry_tick.sec(), Event::kTelemetryTick, 0);
    }
  }

  // --- wrap-up ---------------------------------------------------------

  ServeResult finish() {
    ServeResult out;
    std::size_t in_slo = 0;
    for (Tenant& ten : tenants_) {
      // Every admitted request got exactly one typed terminal outcome.
      MH_CHECK(ten.stats.offered == ten.stats.admitted +
                                        ten.stats.shed_rate_limit +
                                        ten.stats.shed_queue_full,
               "serve lost an arrival");
      MH_CHECK(ten.stats.admitted ==
                   ten.stats.completed + ten.stats.backend_errors,
               "serve lost an admitted request");
      ten.stats.latency = summarize(ten.stats.latency_ms);
      out.latency_ms = merge(out.latency_ms, ten.stats.latency_ms);
      in_slo += ten.stats.completed - ten.stats.slo_misses;
      out.tenants.push_back(std::move(ten.stats));
    }
    out.latency = summarize(out.latency_ms);
    stats_.goodput_rps =
        cfg_.duration.sec() > 0.0
            ? static_cast<double>(in_slo) / cfg_.duration.sec()
            : 0.0;
    stats_.makespan = SimTime::seconds(std::max(last_response_, 0.0));
    out.stats = stats_;
    return out;
  }

  ServeConfig cfg_;
  fault::FaultInjector* faults_;
  obs::MetricsRegistry& metrics_;
  std::vector<Tenant> tenants_;
  std::vector<Worker> workers_;
  std::vector<bool> alive_;
  std::optional<obs::ScenarioTelemetry> tel_;
  std::priority_queue<Event, std::vector<Event>, EventAfter> events_;
  std::uint64_t seq_ = 0;
  std::array<std::size_t, kRequestClasses> pending_{};
  std::array<std::size_t, kRequestClasses> rr_{};
  std::size_t busy_workers_ = 0;
  std::size_t grace_ticks_ = 6;
  double last_response_ = 0.0;
  ServeStats stats_;
};

double env_number(const char* name, double fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const double v = std::strtod(raw, &end);
  return end != raw ? v : fallback;
}

}  // namespace

ServeResult run_serve(const ServeConfig& config) { return Sim(config).run(); }

std::vector<obs::AlertRule> serve_rules(double burn_threshold) {
  return {
      {obs::AlertRule::Kind::kSloBurn, "slo_burn", "mh_serve_slo_burn", "",
       burn_threshold, 2, 3},
  };
}

double capacity_rps(const ServeConfig& config) {
  // Arrival-weighted mean per-item cost at full batches.
  double weight_total = 0.0;
  double cost = 0.0;
  for (const TenantSpec& spec : config.tenants) {
    double mix_total = 0.0;
    for (double m : spec.mix) mix_total += std::max(m, 0.0);
    if (mix_total <= 0.0) mix_total = 1.0;
    for (std::size_t c = 0; c < kRequestClasses; ++c) {
      const double w =
          spec.arrival_rps * std::max(spec.mix[c], 0.0) / mix_total;
      weight_total += w;
      cost += w * (config.batch_setup[c].sec() /
                       static_cast<double>(config.max_batch) +
                   config.per_item[c].sec());
    }
  }
  if (weight_total <= 0.0 || cost <= 0.0) return 0.0;
  return static_cast<double>(config.workers) * weight_total / cost;
}

ServeConfig default_serve_config(double load) {
  ServeConfig config;
  const char* names[] = {"alpha", "bravo", "charlie", "delta"};
  const double shares[] = {0.4, 0.3, 0.2, 0.1};
  const double weights[] = {4.0, 3.0, 2.0, 1.0};
  for (std::size_t t = 0; t < 4; ++t) {
    TenantSpec spec;
    spec.name = names[t];
    spec.weight = weights[t];
    spec.arrival_rps = shares[t];  // placeholder share; scaled below
    config.tenants.push_back(std::move(spec));
  }
  // Scale the shares to `load` x the full-batch capacity of this config
  // (capacity_rps only needs the mix, which is already final).
  ServeConfig probe = config;
  for (std::size_t t = 0; t < probe.tenants.size(); ++t) {
    probe.tenants[t].arrival_rps = shares[t] * 1000.0;
  }
  const double capacity = capacity_rps(probe);
  for (std::size_t t = 0; t < config.tenants.size(); ++t) {
    TenantSpec& spec = config.tenants[t];
    spec.arrival_rps = shares[t] * load * capacity;
    // Admission provisioned above fair share: the saturation knee shows
    // queueing first, shedding caps the far side of the curve.
    spec.rate_rps = 1.25 * shares[t] * capacity;
    spec.burst = 2.0 * static_cast<double>(config.max_batch);
  }
  return config;
}

void apply_env_overrides(ServeConfig& config) {
  config.workers = static_cast<std::size_t>(std::max(
      1.0,
      env_number("MH_SERVE_WORKERS", static_cast<double>(config.workers))));
  config.backend_ranks = static_cast<std::size_t>(std::max(
      1.0,
      env_number("MH_SERVE_RANKS", static_cast<double>(config.backend_ranks))));
  config.max_batch = static_cast<std::size_t>(std::max(
      1.0,
      env_number("MH_SERVE_MAX_BATCH", static_cast<double>(config.max_batch))));
  config.flush_window =
      SimTime::micros(env_number("MH_SERVE_WINDOW_US",
                                 config.flush_window.us()));
  config.deadline_margin =
      SimTime::micros(env_number("MH_SERVE_MARGIN_US",
                                 config.deadline_margin.us()));
  config.duration =
      SimTime::seconds(env_number("MH_SERVE_DURATION_S",
                                  config.duration.sec()));
  config.seed = static_cast<std::uint64_t>(
      env_number("MH_SERVE_SEED", static_cast<double>(config.seed)));
  const double slo_ms = env_number("MH_SERVE_SLO_MS", 0.0);
  const double load = env_number("MH_SERVE_LOAD", 0.0);
  for (TenantSpec& spec : config.tenants) {
    if (slo_ms > 0.0) spec.slo = SimTime::millis(slo_ms);
    if (load > 0.0) spec.arrival_rps *= load;
  }
  if (const char* policy = std::getenv("MH_SERVE_POLICY");
      policy != nullptr && *policy != '\0') {
    config.policy = std::string_view(policy) == "timer"
                        ? FlushPolicy::kTimer
                        : FlushPolicy::kDeadline;
  }
}

}  // namespace mh::serve
