// Multi-tenant serving front-end over the batching runtime — the ROADMAP
// north star's request plane.
//
// Every workload so far is a one-shot batch job; this subsystem turns the
// paper's core discipline — aggregate many small irregular tasks into
// dispatchable batches (§II-A) — into an inference-style request server.
// An open-loop stream of Apply / Compress / Reconstruct requests (the
// Poisson limit of thousands of independent simulated clients per tenant)
// arrives on the simulated clock and passes through three stages:
//
//   1. Admission — per-tenant token bucket (rate_rps / burst) plus a
//      bounded per-tenant queue. A request that fails either gets an
//      explicit typed shed response *now* (kShedRateLimit /
//      kShedQueueFull): backpressure is a first-class answer, never a
//      silent drop or an unbounded queue.
//   2. Fair-share batching — admitted requests queue per (tenant, class);
//      batches are formed per class by weighted round-robin across
//      tenants, so a hog tenant saturating its own queue cannot starve
//      the others. Flush discipline is configurable:
//        kTimer    — classic size/timer cadence (flush_window), the
//                    batching.hpp default;
//        kDeadline — the serving discipline: flush at the last
//                    responsible moment for the earliest enqueued
//                    deadline (rt::deadline_flush_at, the same policy
//                    arithmetic the BatchingEngine's deadline hook runs
//                    on the wall clock).
//   3. Service — `workers` parallel batch servers, each bound to a
//      backend rank; a batch costs batch_setup[class] +
//      n * per_item[class] of simulated time. Every dispatch consults
//      the fault injector's `send` site: a hit kills the worker's rank
//      (capacity loss until rank_restart elapses) and answers the whole
//      batch with typed kBackendError responses — under chaos the server
//      sheds and errors, it never hangs.
//
// Everything runs single-threaded on a discrete-event simulated clock, so
// latency distributions, flush-reason counts, and shed totals are
// bit-reproducible and CI can gate p99/p999 exactly (the same convention
// as clustersim: only deterministic simulated-time results gate).
//
// Observability: per-tenant latency histograms land in the provided
// MetricsRegistry (mh_serve_latency_ms{tenant=...}); when a HealthPlane is
// attached, per-tenant SLO-burn / queue-depth lanes are published every
// telemetry_tick and the kSloBurn AlertRule (serve_rules) fires and
// resolves on the simulated clock — the dashboard CI validates with
// mh_health --check is written by that plane.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/sim_time.hpp"
#include "common/stats.hpp"
#include "fault/fault.hpp"
#include "obs/health.hpp"
#include "obs/metrics.hpp"

namespace mh::serve {

/// The three request shapes a MADNESS serving tier answers.
enum class RequestClass : std::uint8_t {
  kApply = 0,
  kCompress = 1,
  kReconstruct = 2,
};
inline constexpr std::size_t kRequestClasses = 3;

const char* request_class_name(RequestClass c) noexcept;

/// Every request gets exactly one typed terminal outcome.
enum class Outcome : std::uint8_t {
  kOk = 0,             ///< served (possibly past its SLO — see slo_misses)
  kShedRateLimit = 1,  ///< admission: token bucket empty
  kShedQueueFull = 2,  ///< admission: tenant queue at capacity
  kBackendError = 3,   ///< batch hit a dead/dying rank (typed error reply)
};

enum class FlushPolicy : std::uint8_t { kTimer = 0, kDeadline = 1 };

struct TenantSpec {
  std::string name = "tenant";
  /// Fair-share weight: items taken per round-robin visit when forming a
  /// batch (>= 1 after rounding).
  double weight = 1.0;
  /// Admission token bucket: sustained rate and burst capacity.
  double rate_rps = 10000.0;
  double burst = 128.0;
  /// Bounded queue across the tenant's three per-class FIFOs.
  std::size_t queue_cap = 512;
  /// Per-request latency budget; deadline = arrival + slo.
  SimTime slo = SimTime::millis(8.0);
  /// Open-loop offered load (Poisson arrivals, exponential interarrival).
  double arrival_rps = 5000.0;
  /// Request-class mix (normalized internally). Apply dominates;
  /// reconstruct is the rare, setup-heavy class whose batches are the
  /// flush policy's hard case.
  std::array<double, kRequestClasses> mix{0.75, 0.2, 0.05};
};

struct ServeConfig {
  std::vector<TenantSpec> tenants;
  /// Parallel batch servers; worker w is bound to rank w % backend_ranks.
  std::size_t workers = 2;
  std::size_t backend_ranks = 4;
  std::size_t max_batch = 64;
  /// kTimer: dispatch a class once its oldest item is this old. One fixed
  /// window must serve every class — the compromise the deadline policy
  /// escapes (each class gets its own last-responsible-moment window).
  SimTime flush_window = SimTime::millis(1.0);
  FlushPolicy policy = FlushPolicy::kDeadline;
  /// kDeadline: safety margin in flush_at = deadline - estimate - margin.
  /// The estimate covers the batch's own service; the margin covers what
  /// it cannot see — the wait for a free worker, up to one full batch
  /// service of the most expensive class.
  SimTime deadline_margin = SimTime::millis(2.5);
  /// Arrivals stop after this much simulated time; queued work drains.
  SimTime duration = SimTime::seconds(2.0);
  std::uint64_t seed = 0x5eedULL;
  /// Batch cost model per class: setup + n * per_item of worker time.
  /// Deliberately heterogeneous — reconstruct's setup is ~8x apply's
  /// (deep-refinement trees ship whole ancestor paths), so it only
  /// amortizes in near-full batches that take milliseconds to accumulate
  /// at its low arrival share.
  std::array<SimTime, kRequestClasses> batch_setup{
      SimTime::micros(200.0), SimTime::micros(400.0), SimTime::micros(2000.0)};
  std::array<SimTime, kRequestClasses> per_item{
      SimTime::micros(8.0), SimTime::micros(10.0), SimTime::micros(20.0)};
  /// Typed error responses land this long after the failed dispatch.
  SimTime error_latency = SimTime::micros(50.0);
  /// A killed rank rejoins (empty) after this much simulated time.
  SimTime rank_restart = SimTime::millis(50.0);
  /// Send-site injector consulted once per batch dispatch; nullptr means
  /// the process injector configured from MH_FAULTS.
  fault::FaultInjector* faults = nullptr;
  /// Per-tenant latency histograms and shed counters land here; nullptr
  /// means the process registry (obs::MetricsRegistry::global()).
  obs::MetricsRegistry* metrics = nullptr;
  /// Live health plane on the simulated clock: per-tenant SLO-burn and
  /// queue-depth lanes published every telemetry_tick (tenant index is
  /// the lane "rank"). Non-owning; nullptr disables telemetry.
  obs::HealthPlane* health = nullptr;
  SimTime telemetry_tick = SimTime::millis(10.0);
};

struct TenantStats {
  std::string name;
  std::size_t offered = 0;          ///< open-loop arrivals generated
  std::size_t admitted = 0;
  std::size_t shed_rate_limit = 0;
  std::size_t shed_queue_full = 0;
  std::size_t backend_errors = 0;
  std::size_t completed = 0;        ///< kOk responses
  std::size_t slo_misses = 0;       ///< kOk but later than the deadline
  /// kOk response latency (ms), log-bucketed; `latency` = summarize(...).
  HistogramSnapshot latency_ms;
  SampleSummary latency;
};

struct ServeStats {
  std::size_t batches = 0;
  std::size_t size_flushes = 0;
  std::size_t timer_flushes = 0;
  std::size_t deadline_flushes = 0;
  std::size_t max_batch_seen = 0;
  std::size_t rank_deaths = 0;
  std::size_t rank_restarts = 0;
  std::size_t alerts_fired = 0;     ///< health-plane transitions observed
  std::size_t alerts_resolved = 0;
  /// In-SLO completions per second of configured duration.
  double goodput_rps = 0.0;
  SimTime makespan;                 ///< duration + drain
};

struct ServeResult {
  std::vector<TenantStats> tenants;
  ServeStats stats;
  /// All tenants' kOk latency merged (lossless bucket-wise).
  HistogramSnapshot latency_ms;
  SampleSummary latency;
};

/// Run the server to completion (arrivals for `duration`, then drain).
/// Deterministic: same config + seed => bitwise-identical result.
ServeResult run_serve(const ServeConfig& config);

/// Alert rules for a serving health plane: the per-tenant SLO-burn rule
/// (mh_serve_slo_burn lane >= burn_threshold, 2 ticks to fire, 3 clean
/// ticks to resolve) — append to default_rules() or use alone.
std::vector<obs::AlertRule> serve_rules(double burn_threshold = 0.5);

/// Closed-form full-batch capacity estimate (requests/s): workers divided
/// by the arrival-weighted per-item cost setup/max_batch + per_item.
double capacity_rps(const ServeConfig& config);

/// The standard 4-tenant scenario offered at `load` x capacity_rps:
/// uneven tenant shares (0.4/0.3/0.2/0.1), admission provisioned at
/// 1.25 x fair share so the saturation knee shows queueing before
/// shedding takes over.
ServeConfig default_serve_config(double load);

/// Apply MH_SERVE_* environment overrides (see README "Serving"):
/// WORKERS, RANKS, MAX_BATCH, WINDOW_US, MARGIN_US, POLICY, SLO_MS,
/// DURATION_S, LOAD (rescales every tenant's arrival_rps), SEED.
void apply_env_overrides(ServeConfig& config);

}  // namespace mh::serve
