// Reproduces Figure 6: GFLOPS of batches of 20 matrix multiplications of
// shape (k^3, k) x (k, k) — the 4-D tensor-product pattern — on a GeForce
// GTX 480, custom fused kernel vs cuBLAS.
//
// 4-D tiles spill the custom kernel's shared-memory budget even at small k,
// which is why the paper's TDSE application (Table VI) uses cuBLAS: cuBLAS
// should overtake the custom kernel at much smaller k than in Figure 5.
#include <iostream>

#include "bench_common.hpp"
#include "bench_figs.hpp"
#include "bench_harness.hpp"

namespace {

using namespace mh;
using namespace mh::bench;

int run(int argc, char** argv) {
  Harness h("fig6", argc, argv);
  print_header(
      "Figure 6 — batched (k^3, k) x (k, k) multiplications, batch of 20, "
      "GTX 480, GFLOPS (higher is better)");

  TextTable t({"k", "cu_mtxm_kernel (GFLOPS)", "cuBLAS (GFLOPS)", "ratio"});
  for (std::size_t k = 10; k <= 28; k += 2) {
    if (h.quick() && k != 10 && k != 28) continue;
    const FigPoint p = measure_batched_gemm(4, k, 20, 5);
    t.add_row({std::to_string(k), fmt(p.custom_gflops, 1),
               fmt(p.cublas_gflops, 1),
               fmt(p.custom_gflops / p.cublas_gflops, 2)});
    const std::string prefix = "k" + std::to_string(k);
    h.scalar(prefix + "_custom_gflops", p.custom_gflops, "GFLOPS",
             Direction::kHigherIsBetter);
    h.scalar(prefix + "_cublas_gflops", p.cublas_gflops, "GFLOPS",
             Direction::kHigherIsBetter);
  }
  t.print(std::cout);
  print_footnote(
      "paper (text): for the larger 4-D tensors cuBLAS is the regime of "
      "choice (Table VI uses it); the custom kernel's shared-memory "
      "advantage is gone.");
  return h.finish();
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
