// Reproduces Figure 5: GFLOPS of batches of 60 matrix multiplications of
// shape (k^2, k) x (k, k) — the 3-D tensor-product pattern — on a GeForce
// GTX 480, custom fused kernel (cu_mtxm_kernel) vs cuBLAS.
//
// The paper's figure is an image (absolute values unavailable); the shape
// criteria it supports in the text are: the custom kernel wins by ~2.2x for
// small k and the advantage erodes toward parity as k approaches 28.
#include <iostream>

#include "bench_common.hpp"
#include "bench_figs.hpp"
#include "bench_harness.hpp"

namespace {

using namespace mh;
using namespace mh::bench;

int run(int argc, char** argv) {
  Harness h("fig5", argc, argv);
  print_header(
      "Figure 5 — batched (k^2, k) x (k, k) multiplications, batch of 60, "
      "GTX 480, GFLOPS (higher is better)");

  TextTable t({"k", "cu_mtxm_kernel (GFLOPS)", "cuBLAS (GFLOPS)", "ratio"});
  for (std::size_t k = 10; k <= 28; k += 2) {
    if (h.quick() && k != 10 && k != 28) continue;
    const FigPoint p = measure_batched_gemm(3, k, 60, 5);
    t.add_row({std::to_string(k), fmt(p.custom_gflops, 1),
               fmt(p.cublas_gflops, 1),
               fmt(p.custom_gflops / p.cublas_gflops, 2)});
    const std::string prefix = "k" + std::to_string(k);
    h.scalar(prefix + "_custom_gflops", p.custom_gflops, "GFLOPS",
             Direction::kHigherIsBetter);
    h.scalar(prefix + "_cublas_gflops", p.cublas_gflops, "GFLOPS",
             Direction::kHigherIsBetter);
  }
  t.print(std::cout);
  print_footnote(
      "paper (text): custom kernel ~2.2x faster than cuBLAS for small "
      "matrices; advantage shrinks as k grows toward 28.");
  return h.finish();
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
