// Extension experiment (not in the paper): dynamic load balancing via
// cross-rank work stealing, against the static process maps whose
// imbalance the paper names as its scaling limit ("the process map assigns
// more work to some of the nodes").
//
// Depth-skewed power-law subtree groups are placed by the hashed locality
// map at 4–64 simulated nodes; idle nodes then migrate whole groups off
// stragglers, paying the steal round trip plus the coefficient transfer in
// simulated time. Two victim policies run side by side: locality-biased
// (prefer groups whose DHT anchor the thief owns — those ship descriptors,
// not coefficients) and uniform random. Gated acceptance at the 16- and
// 64-node tiers: biased stealing beats the static locality map by >= 1.3x
// and never loses to the random-victim policy.
//
// Set MH_TRACE=<path> to export the 4-node hybrid steal run as a merged
// multi-rank Chrome trace (one TraceSession per simulated rank) for
// mh_trace_analyze --check.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "bench_harness.hpp"
#include "common/diagnostics.hpp"
#include "dht/owner_map.hpp"
#include "obs/critical_path.hpp"
#include "obs/trace.hpp"
#include "obs/trace_reader.hpp"

namespace {

using namespace mh;
using namespace mh::bench;

// Per-group coefficient homes: distinct subtree anchors hashed onto ranks
// by a SubtreeOwnerMap. Seeded differently from the placement hash, so a
// group's home rank usually differs from where the work map put it — the
// gap the locality-biased steal policy exploits.
std::vector<std::size_t> group_homes(std::size_t ngroups, std::size_t nodes,
                                     std::uint64_t seed) {
  const int level = dht::anchor_level(ngroups, 3) + 1;
  const auto anchors = dht::subtree_anchors(ngroups, 3, level, seed);
  const dht::SubtreeOwnerMap map(nodes, level, seed + 1);
  return dht::owners_of(map, anchors);
}

// The 4-node hybrid steal run with one TraceSession per simulated rank,
// merged into a single Chrome trace, analyzed (and optionally written to
// MH_TRACE for the offline critical-path check in CI). Gates overlap
// efficiency at the default seed — steal/migrate spans must chain into
// their thief's causal timeline, not float as orphans.
void traced_multirank_point(Harness& h, const cluster::Workload& w,
                            cluster::ClusterConfig cfg,
                            const cluster::GroupMap& placement,
                            const std::vector<std::size_t>& homes,
                            bool gate) {
  const std::size_t nodes = cfg.nodes;
  std::vector<std::unique_ptr<obs::TraceSession>> sessions;
  for (std::size_t i = 0; i < nodes; ++i) {
    sessions.push_back(std::make_unique<obs::TraceSession>());
    cfg.node_traces.push_back(sessions.back().get());
  }
  // Honors MH_STEAL_VICTIM / MH_STEAL_OWNED_FRACTION so a policy change
  // can be traced and diffed (mh_trace_diff) against the checked-in
  // baseline trace; defaults reproduce the baseline exactly.
  const auto dyn = cluster::run_cluster_apply_stealing(
      w, placement, homes, cfg, cluster::StealPolicy::from_env());
  if (!dyn.result.feasible) return;

  std::vector<obs::RankedSession> ranked;
  for (std::size_t i = 0; i < nodes; ++i) {
    ranked.push_back({"rank" + std::to_string(i), sessions[i].get()});
  }
  std::stringstream ss;
  obs::write_merged_chrome_trace(ss, ranked);
  obs::ReadTrace trace;
  std::string error;
  MH_CHECK(obs::read_chrome_trace(ss, &trace, &error),
           "merged steal trace must parse: " + error);
  const obs::TraceAnalysis a = obs::analyze_trace(trace);
  std::size_t steal_spans = 0;
  for (const obs::ReadSpan& s : trace.spans) {
    if (s.name == "steal" || s.name == "migrate") ++steal_spans;
  }
  std::cout << "\ntraced 4-node hybrid steal run: " << dyn.steals.steals
            << " migrations (" << steal_spans << " steal/migrate spans), "
            << "overlap efficiency " << fmt(a.overlap_efficiency, 3)
            << ", components " << a.connected_components << "\n";
  h.scalar("traced4_overlap_efficiency", a.overlap_efficiency, "",
           Direction::kHigherIsBetter, gate);

  if (const char* path = std::getenv("MH_TRACE");
      path != nullptr && *path != '\0') {
    std::ofstream out(path);
    if (out) {
      obs::write_merged_chrome_trace(out, ranked);
      print_footnote(std::string("trace: wrote merged steal run to ") +
                     path);
    } else {
      print_footnote(std::string("trace: could not write ") + path);
    }
  }
}

int run(int argc, char** argv) {
  Harness h("steal", argc, argv);
  print_header(
      "Work stealing (extension) — depth-skewed subtree groups, CPU-only "
      "nodes, locality-biased vs random-victim vs static");
  const std::uint64_t seed = h.seed_or(4242);
  // Gate only at the default seed: a --seed override changes the workload
  // itself, not the scheduler.
  const bool gate = seed == 4242;
  const std::size_t per_node = 1200;
  bool traced_point_done = false;

  TextTable t({"nodes", "static (s)", "imbal", "biased steal (s)", "speedup",
               "random steal (s)", "owned", "migrated MB"});
  struct GatedPoint {
    std::size_t nodes;
    double speedup, biased_s, random_s;
  };
  std::vector<GatedPoint> gated;
  for (const std::size_t nodes : {4u, 16u, 64u}) {
    if (h.quick() && nodes > 16) continue;
    const std::size_t tasks = per_node * nodes;
    const std::size_t ngroups = nodes * 8;
    cluster::Workload w = cluster::make_workload(
        "steal", gpu::ApplyTaskShape{3, 10, 100}, tasks, ngroups, 2.5, seed);

    auto cfg = apps::titan_config();
    cfg.nodes = nodes;
    cfg.mode = cluster::ComputeMode::kCpuOnly;

    const auto placement =
        cluster::locality_group_map(w.group_sizes, nodes, 17);
    const auto homes = group_homes(ngroups, nodes, seed);

    const RunSec st = run_cluster(w, placement.loads(w.group_sizes), cfg);
    cluster::StealPolicy biased;  // locality-biased is the default
    const auto dyn =
        cluster::run_cluster_apply_stealing(w, placement, homes, cfg, biased);
    cluster::StealPolicy random_pol;
    random_pol.victim = cluster::StealPolicy::Victim::kRandom;
    const auto rnd = cluster::run_cluster_apply_stealing(w, placement, homes,
                                                         cfg, random_pol);
    MH_CHECK(st.feasible && dyn.result.feasible && rnd.result.feasible,
             "CPU-only points must be feasible");
    MH_CHECK(!dyn.result.empty, "steal run must not be empty");

    const double biased_s = dyn.result.makespan.sec();
    const double random_s = rnd.result.makespan.sec();
    const double speedup = st.sec / biased_s;
    t.add_row({std::to_string(nodes), fmt(st, 2),
               fmt(cluster::imbalance(placement.loads(w.group_sizes)), 2) +
                   "x",
               fmt(biased_s, 2), fmt(speedup, 2) + "x", fmt(random_s, 2),
               std::to_string(dyn.steals.owned_steals) + "/" +
                   std::to_string(dyn.steals.steals),
               fmt(dyn.steals.migrated_bytes / 1e6, 1)});

    const std::string prefix = "nodes_" + std::to_string(nodes);
    h.scalar(prefix + "_static_s", st.sec, "s", Direction::kLowerIsBetter,
             gate);
    h.scalar(prefix + "_steal_biased_s", biased_s, "s",
             Direction::kLowerIsBetter, gate);
    h.scalar(prefix + "_steal_random_s", random_s, "s",
             Direction::kLowerIsBetter, gate);
    h.scalar(prefix + "_steal_speedup", speedup, "x",
             Direction::kHigherIsBetter, gate);
    // Migration volume is informative, not gated: policy tuning may move
    // it without being a regression.
    h.scalar(prefix + "_migrated_mb", dyn.steals.migrated_bytes / 1e6, "MB",
             Direction::kLowerIsBetter, false);

    if (gate && nodes >= 16) {
      gated.push_back({nodes, speedup, biased_s, random_s});
    }

    if (nodes == 4) {
      auto traced_cfg = cfg;
      traced_cfg.mode = cluster::ComputeMode::kHybrid;
      traced_cfg.cpu_compute_threads = 15;
      traced_multirank_point(h, w, traced_cfg, placement, homes, gate);
      traced_point_done = true;
    }
  }
  MH_CHECK(traced_point_done, "4-node traced point must run");
  t.print(std::cout);
  for (const GatedPoint& p : gated) {
    // Acceptance: on skewed workloads at 16+ nodes, locality-biased
    // stealing reclaims >= 1.3x of the static map's makespan and never
    // loses to random-victim selection.
    MH_CHECK(p.speedup >= 1.3,
             "biased stealing must beat the static locality map by 1.3x at " +
                 std::to_string(p.nodes) + " nodes");
    MH_CHECK(p.biased_s <= p.random_s * 1.001,
             "locality-biased must not lose to random-victim stealing at " +
                 std::to_string(p.nodes) + " nodes");
  }
  print_footnote(
      "static = the paper's hashed locality map (whole subtrees, no\n"
      "rebalancing); its imbalance column is the straggler the steal loop\n"
      "drains. biased steals prefer groups whose DHT anchor the thief\n"
      "owns (owned column: owned/total migrations) and pay only the\n"
      "descriptor bytes for them, so they match or beat random victims at\n"
      "every node count while moving less data.");
  return h.finish();
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
