// Reproduces Table I: CPU thread scale-up vs GPU stream scale-up vs hybrid
// for Coulomb with d=3, k=10, precision 1e-8 (no rank reduction), on a
// single Titan node. Batches of 60 independent compute tasks.
#include <iostream>

#include "bench_common.hpp"
#include "bench_harness.hpp"
#include "runtime/dispatch.hpp"

namespace {

using namespace mh;
using namespace mh::bench;

int run(int argc, char** argv) {
  Harness h("table1", argc, argv);
  const cluster::Workload w = apps::table1_workload();
  cluster::ClusterConfig base = apps::titan_config();
  base.nodes = 1;
  const cluster::NodeLoads loads{w.tasks};

  print_header(
      "Table I — Coulomb d=3, k=10, precision 1e-8 (no rank reduction), "
      "1 Titan node");
  std::cout << "workload: " << w.name << ", " << w.tasks
            << " compute tasks in batches of " << base.batch_size << "\n\n";

  // --- CPU-only thread scale-up.
  {
    TextTable t({"CPU threads", "measured (s)", "paper (s)"});
    const int threads[] = {1, 2, 4, 6, 8, 10, 12, 14, 16};
    const double paper[] = {132.5, 66.5, 45.7, 35.6, 28.5,
                            24.3,  22.8, 18.5, 19.9};
    for (std::size_t i = 0; i < std::size(threads); ++i) {
      if (h.quick() && threads[i] != 1 && threads[i] != 10 &&
          threads[i] != 16) {
        continue;
      }
      auto cfg = base;
      cfg.mode = cluster::ComputeMode::kCpuOnly;
      cfg.cpu_compute_threads = static_cast<std::size_t>(threads[i]);
      const RunSec r = run_cluster(w, loads, cfg);
      t.add_row({std::to_string(threads[i]), fmt(r), fmt(paper[i])});
      h.scalar("cpu_threads_" + std::to_string(threads[i]) + "_s", r.sec, "s");
    }
    t.print(std::cout);
  }

  // --- GPU-only stream scale-up (custom kernels; 12 data threads).
  {
    TextTable t({"GPU streams", "measured (s)", "paper (s)"});
    const int streams[] = {1, 2, 3, 4, 5, 6};
    const double paper[] = {71.3, 41.5, 31.5, 26.4, 24.3, 24.7};
    for (std::size_t i = 0; i < std::size(streams); ++i) {
      if (h.quick() && streams[i] != 1 && streams[i] != 5) continue;
      auto cfg = base;
      cfg.mode = cluster::ComputeMode::kGpuOnly;
      cfg.node.gpu_streams = static_cast<std::size_t>(streams[i]);
      const RunSec r = run_cluster(w, loads, cfg);
      t.add_row({std::to_string(streams[i]), fmt(r), fmt(paper[i])});
      h.scalar("gpu_streams_" + std::to_string(streams[i]) + "_s", r.sec, "s");
    }
    t.print(std::cout);
  }

  // --- Hybrid: 10 CPU threads + 5 CUDA streams, plus the optimal-overlap
  // prediction from the measured CPU-only(10) and GPU-only(5) times.
  {
    auto cpu_cfg = base;
    cpu_cfg.mode = cluster::ComputeMode::kCpuOnly;
    cpu_cfg.cpu_compute_threads = 10;
    const double m = run_cluster(w, loads, cpu_cfg).sec;

    auto gpu_cfg = base;
    gpu_cfg.mode = cluster::ComputeMode::kGpuOnly;
    gpu_cfg.node.gpu_streams = 5;
    const double n = run_cluster(w, loads, gpu_cfg).sec;

    auto hyb_cfg = base;
    hyb_cfg.mode = cluster::ComputeMode::kHybrid;
    hyb_cfg.cpu_compute_threads = 10;
    hyb_cfg.node.gpu_streams = 5;
    const double actual = run_cluster(w, loads, hyb_cfg).sec;
    const double optimal = rt::optimal_overlap_time(m, n);

    TextTable t({"CPU+GPU (10 thr, 5 streams)", "measured (s)", "paper (s)"});
    t.add_row({"actual", fmt(actual), fmt(14.4)});
    t.add_row({"optimal CPU-GPU overlap", fmt(optimal), fmt(12.1)});
    t.print(std::cout);
    h.scalar("hybrid_actual_s", actual, "s");
    h.scalar("hybrid_optimal_overlap_s", optimal, "s");
  }
  return h.finish();
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
