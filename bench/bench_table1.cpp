// Reproduces Table I: CPU thread scale-up vs GPU stream scale-up vs hybrid
// for Coulomb with d=3, k=10, precision 1e-8 (no rank reduction), on a
// single Titan node. Batches of 60 independent compute tasks.
#include <iostream>

#include "bench_common.hpp"
#include "runtime/dispatch.hpp"

namespace {

using namespace mh;
using namespace mh::bench;

int run() {
  const cluster::Workload w = apps::table1_workload();
  cluster::ClusterConfig base = apps::titan_config();
  base.nodes = 1;
  const cluster::NodeLoads loads{w.tasks};

  print_header(
      "Table I — Coulomb d=3, k=10, precision 1e-8 (no rank reduction), "
      "1 Titan node");
  std::cout << "workload: " << w.name << ", " << w.tasks
            << " compute tasks in batches of " << base.batch_size << "\n\n";

  // --- CPU-only thread scale-up.
  {
    TextTable t({"CPU threads", "measured (s)", "paper (s)"});
    const int threads[] = {1, 2, 4, 6, 8, 10, 12, 14, 16};
    const double paper[] = {132.5, 66.5, 45.7, 35.6, 28.5,
                            24.3,  22.8, 18.5, 19.9};
    for (std::size_t i = 0; i < std::size(threads); ++i) {
      auto cfg = base;
      cfg.mode = cluster::ComputeMode::kCpuOnly;
      cfg.cpu_compute_threads = static_cast<std::size_t>(threads[i]);
      t.add_row({std::to_string(threads[i]),
                 fmt(run_seconds(w, loads, cfg)), fmt(paper[i])});
    }
    t.print(std::cout);
  }

  // --- GPU-only stream scale-up (custom kernels; 12 data threads).
  {
    TextTable t({"GPU streams", "measured (s)", "paper (s)"});
    const int streams[] = {1, 2, 3, 4, 5, 6};
    const double paper[] = {71.3, 41.5, 31.5, 26.4, 24.3, 24.7};
    for (std::size_t i = 0; i < std::size(streams); ++i) {
      auto cfg = base;
      cfg.mode = cluster::ComputeMode::kGpuOnly;
      cfg.node.gpu_streams = static_cast<std::size_t>(streams[i]);
      t.add_row({std::to_string(streams[i]),
                 fmt(run_seconds(w, loads, cfg)), fmt(paper[i])});
    }
    t.print(std::cout);
  }

  // --- Hybrid: 10 CPU threads + 5 CUDA streams, plus the optimal-overlap
  // prediction from the measured CPU-only(10) and GPU-only(5) times.
  {
    auto cpu_cfg = base;
    cpu_cfg.mode = cluster::ComputeMode::kCpuOnly;
    cpu_cfg.cpu_compute_threads = 10;
    const double m = run_seconds(w, loads, cpu_cfg);

    auto gpu_cfg = base;
    gpu_cfg.mode = cluster::ComputeMode::kGpuOnly;
    gpu_cfg.node.gpu_streams = 5;
    const double n = run_seconds(w, loads, gpu_cfg);

    auto hyb_cfg = base;
    hyb_cfg.mode = cluster::ComputeMode::kHybrid;
    hyb_cfg.cpu_compute_threads = 10;
    hyb_cfg.node.gpu_streams = 5;
    const double actual = run_seconds(w, loads, hyb_cfg);
    const double optimal = rt::optimal_overlap_time(m, n);

    TextTable t({"CPU+GPU (10 thr, 5 streams)", "measured (s)", "paper (s)"});
    t.add_row({"actual", fmt(actual), fmt(14.4)});
    t.add_row({"optimal CPU-GPU overlap", fmt(optimal), fmt(12.1)});
    t.print(std::cout);
  }
  return 0;
}

}  // namespace

int main() { return run(); }
