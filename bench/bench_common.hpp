// Shared helpers for the paper-reproduction bench binaries.
#pragma once

#include <cmath>
#include <iostream>
#include <string>

#include "apps/paper_workloads.hpp"
#include "clustersim/cluster.hpp"
#include "clustersim/process_map.hpp"
#include "common/diagnostics.hpp"
#include "common/table.hpp"

namespace mh::bench {

/// Format a value for a table cell. Feasibility is explicit — "-" is only
/// ever printed because the caller said the configuration was infeasible,
/// never because a sentinel leaked through arithmetic. NaN is a bug in the
/// bench (a ratio of infeasible values), so it asserts instead of printing.
inline std::string fmt(double v, int prec = 1, bool feasible = true) {
  if (!feasible) return "-";
  MH_CHECK(!std::isnan(v), "NaN reached a bench table cell");
  return TextTable::num(v, prec);
}

/// One cluster run: the makespan plus an explicit feasibility flag (the
/// paper's "data per node is too large for the GPU RAM" rows).
struct RunSec {
  double sec = 0.0;
  bool feasible = false;
  std::string note;
};

inline std::string fmt(const RunSec& r, int prec = 1) {
  return fmt(r.sec, prec, r.feasible);
}

inline RunSec run_cluster(const cluster::Workload& w,
                          const cluster::NodeLoads& loads,
                          const cluster::ClusterConfig& cfg) {
  const auto result = cluster::run_cluster_apply(w, loads, cfg);
  if (!result.feasible) return {0.0, false, result.note};
  return {result.makespan.sec(), true, {}};
}

inline void print_header(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n";
}

inline void print_footnote(const std::string& text) {
  std::cout << text << "\n";
}

}  // namespace mh::bench
