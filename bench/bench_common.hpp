// Shared helpers for the paper-reproduction bench binaries.
#pragma once

#include <iostream>
#include <string>

#include "apps/paper_workloads.hpp"
#include "clustersim/cluster.hpp"
#include "clustersim/process_map.hpp"
#include "common/table.hpp"

namespace mh::bench {

inline std::string fmt(double v, int prec = 1) {
  return v < 0.0 ? std::string{"-"} : TextTable::num(v, prec);
}

/// Run one cluster configuration and return the makespan in seconds, or a
/// negative value when infeasible (printed as a note).
inline double run_seconds(const cluster::Workload& w,
                          const cluster::NodeLoads& loads,
                          const cluster::ClusterConfig& cfg,
                          std::string* note = nullptr) {
  const auto result = cluster::run_cluster_apply(w, loads, cfg);
  if (!result.feasible) {
    if (note != nullptr) *note = result.note;
    return -1.0;
  }
  return result.makespan.sec();
}

inline void print_header(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n";
}

inline void print_footnote(const std::string& text) {
  std::cout << text << "\n";
}

}  // namespace mh::bench
