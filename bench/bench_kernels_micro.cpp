// Real wall-clock microbenchmarks (google-benchmark) of the host-side
// compute kernels: the mTxm GEMM pattern, the mode-wise tensor transform of
// Formula 1, and a full Apply compute task. These measure THIS machine, not
// the simulated Titan node; they validate that the kernels behave sanely
// (e.g. flops scale as expected) and give the repository an honest native
// baseline.
#include <benchmark/benchmark.h>

#include <vector>

#include "common/rng.hpp"
#include "gpusim/kernels.hpp"
#include "linalg/gemm.hpp"
#include "tensor/tensor.hpp"
#include "tensor/transform.hpp"

namespace {

using namespace mh;

void BM_mTxm(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const std::size_t rows = k * k;  // the (k^2, k) x (k, k) pattern
  Rng rng(1);
  std::vector<double> a(k * rows), b(k * k), c(rows * k, 0.0);
  for (auto& x : a) x = rng.uniform(-1.0, 1.0);
  for (auto& x : b) x = rng.uniform(-1.0, 1.0);
  for (auto _ : state) {
    linalg::mTxm(rows, k, k, c.data(), a.data(), b.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["GFLOPS"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * linalg::gemm_flops(rows, k, k) /
          1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_mTxm)->Arg(10)->Arg(14)->Arg(20)->Arg(28);

void BM_Transform3d(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  Tensor t = Tensor::cube(3, k);
  for (auto& x : t.flat()) x = rng.uniform(-1.0, 1.0);
  std::vector<double> c(k * k);
  for (auto& x : c) x = rng.uniform(-1.0, 1.0);
  const MatrixView cv(c.data(), k, k);
  for (auto _ : state) {
    Tensor r = transform(t, cv);
    benchmark::DoNotOptimize(r.data());
  }
  state.counters["GFLOPS"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * transform_flops(3, k) / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Transform3d)->Arg(10)->Arg(20)->Arg(30);

void BM_Transform4d(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  Tensor t = Tensor::cube(4, k);
  for (auto& x : t.flat()) x = rng.uniform(-1.0, 1.0);
  std::vector<double> c(k * k);
  for (auto& x : c) x = rng.uniform(-1.0, 1.0);
  const MatrixView cv(c.data(), k, k);
  for (auto _ : state) {
    Tensor r = transform(t, cv);
    benchmark::DoNotOptimize(r.data());
  }
  state.counters["GFLOPS"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * transform_flops(4, k) / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Transform4d)->Arg(10)->Arg(14);

void BM_FusedComputeTask(benchmark::State& state) {
  // One Apply compute task at reduced rank count (M = 16) so a single
  // iteration stays in the microsecond range on a laptop.
  const auto k = static_cast<std::size_t>(state.range(0));
  const std::size_t d = 3, terms = 16;
  Rng rng(4);
  Tensor source = Tensor::cube(d, k);
  for (auto& x : source.flat()) x = rng.uniform(-1.0, 1.0);
  std::vector<std::vector<double>> mats(terms * d,
                                        std::vector<double>(k * k));
  std::vector<MatrixView> views;
  for (auto& m : mats) {
    for (auto& x : m) x = rng.uniform(-1.0, 1.0);
    views.emplace_back(m.data(), k, k);
  }
  std::vector<double> coeffs(terms, 1.0);
  for (auto _ : state) {
    Tensor r = gpu::custom_fused_compute(source, views, coeffs);
    benchmark::DoNotOptimize(r.data());
  }
  const gpu::ApplyTaskShape shape{d, k, terms};
  state.counters["GFLOPS"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * shape.flops() / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FusedComputeTask)->Arg(10)->Arg(20);

}  // namespace

BENCHMARK_MAIN();
