// Real wall-clock microbenchmarks of the host-side compute kernels: the
// mTxm GEMM pattern, the mode-wise tensor transform of Formula 1, and a
// full Apply compute task. These measure THIS machine, not the simulated
// Titan node; they validate that the kernels behave sanely (e.g. flops
// scale as expected) and give the repository an honest native baseline.
//
// Results are recorded through the shared bench harness (warmup + repeats,
// median/p95/CoV); GFLOPS scalars are derived from the median. Wall-clock
// numbers are machine-dependent, so nothing here gates CI.
#include <cstddef>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "bench_harness.hpp"
#include "common/rng.hpp"
#include "gpusim/kernels.hpp"
#include "linalg/batch_gemm.hpp"
#include "linalg/gemm.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/trace.hpp"
#include "tensor/tensor.hpp"
#include "tensor/transform.hpp"

namespace {

using namespace mh;
using namespace mh::bench;

// Repeat `body` enough times per sample that one sample is comfortably
// above timer resolution, then record seconds-per-iteration.
void record(Harness& h, TextTable& t, const std::string& name,
            double flops_per_iter, const std::function<void()>& body) {
  const std::size_t inner = h.quick() ? 8 : 32;
  const SampleSummary s = h.measure(name, [&] {
    for (std::size_t i = 0; i < inner; ++i) body();
  });
  const double sec_per_iter = s.p50 / static_cast<double>(inner);
  const double gflops = flops_per_iter / sec_per_iter / 1e9;
  t.add_row({name, fmt(sec_per_iter * 1e6, 2), fmt(gflops, 2),
             fmt(s.cov * 100.0, 1) + "%"});
  h.scalar(name + "_gflops", gflops, "GFLOPS", Direction::kHigherIsBetter,
           /*gate=*/false);
}

int run(int argc, char** argv) {
  Harness h("kernels_micro", argc, argv);
  print_header(
      "Host kernel microbenchmarks — native wall clock on THIS machine");
  std::cout << "packed GEMM dispatch: "
            << (linalg::packed_kernels_use_avx2() ? "AVX2 microkernel"
                                                  : "portable tile")
            << "\n\n";
  TextTable t({"kernel", "us/iter (p50)", "GFLOPS", "CoV"});

  // mTxm: the (k^2, k) x (k, k) GEMM pattern. mTxm routes through the
  // packed batch-GEMM engine; the _ref rows time the legacy scalar kernel
  // it replaced (kept as the bitwise reference), for context.
  for (const std::size_t k :
       h.quick() ? std::vector<std::size_t>{10, 20}
                 : std::vector<std::size_t>{10, 14, 20, 28}) {
    const std::size_t rows = k * k;
    Rng rng(h.seed_or(1));
    std::vector<double> a(k * rows), b(k * k), c(rows * k, 0.0);
    for (auto& x : a) x = rng.uniform(-1.0, 1.0);
    for (auto& x : b) x = rng.uniform(-1.0, 1.0);
    record(h, t, "mTxm_k" + std::to_string(k),
           linalg::gemm_flops(rows, k, k), [&, rows, k] {
             linalg::mTxm(rows, k, k, c.data(), a.data(), b.data());
           });
    record(h, t, "mTxm_ref_k" + std::to_string(k),
           linalg::gemm_flops(rows, k, k), [&, rows, k] {
             linalg::mTxm_ref(rows, k, k, c.data(), a.data(), b.data());
           });
  }

  // Batched whole-task fusion: a chunk of Apply tasks through one shared
  // workspace — the aggregated call the batching runtime's cpu_chunk path
  // issues per pool task.
  for (const std::size_t k : h.quick() ? std::vector<std::size_t>{10, 20}
                                       : std::vector<std::size_t>{10, 20}) {
    const std::size_t d = 3, terms = 8, nitems = 4;
    const std::size_t size = k * k * k;
    Rng rng(h.seed_or(3));
    std::vector<std::vector<double>> srcs(nitems,
                                          std::vector<double>(size));
    std::vector<std::vector<double>> results(nitems,
                                             std::vector<double>(size, 0.0));
    std::vector<double> hblocks(nitems * terms * d * k * k);
    std::vector<double> coeffs(terms, 1.0);
    for (auto& s : srcs)
      for (auto& x : s) x = rng.uniform(-1.0, 1.0);
    for (auto& x : hblocks) x = rng.uniform(-1.0, 1.0);
    std::vector<std::vector<linalg::GemmMat>> mats(nitems);
    std::vector<linalg::FusedApplyItem> items(nitems);
    for (std::size_t i = 0; i < nitems; ++i) {
      for (std::size_t j = 0; j < terms * d; ++j) {
        mats[i].push_back(linalg::GemmMat{
            hblocks.data() + (i * terms * d + j) * k * k, k, k});
      }
      items[i].src = srcs[i].data();
      items[i].mats = {mats[i].data(), mats[i].size()};
      items[i].coeffs = {coeffs.data(), coeffs.size()};
      items[i].result = results[i].data();
    }
    const double flops =
        static_cast<double>(nitems) * gpu::ApplyTaskShape{d, k, terms}.flops();
    linalg::GemmWorkspace ws;
    record(h, t, "batch_fused_k" + std::to_string(k), flops, [&] {
      linalg::batch_fused_apply(d, k, items, ws);
    });
  }

  // Mode-wise tensor transform, 3-D and 4-D.
  for (const auto& [d, ks] :
       {std::pair<std::size_t, std::vector<std::size_t>>{
            3, h.quick() ? std::vector<std::size_t>{10}
                         : std::vector<std::size_t>{10, 20, 30}},
        {4, h.quick() ? std::vector<std::size_t>{10}
                      : std::vector<std::size_t>{10, 14}}}) {
    for (const std::size_t k : ks) {
      Rng rng(h.seed_or(2));
      Tensor src = Tensor::cube(d, k);
      for (auto& x : src.flat()) x = rng.uniform(-1.0, 1.0);
      std::vector<double> c(k * k);
      for (auto& x : c) x = rng.uniform(-1.0, 1.0);
      const MatrixView cv(c.data(), k, k);
      record(h, t,
             "transform" + std::to_string(d) + "d_k" + std::to_string(k),
             transform_flops(d, k), [&] {
               Tensor r = transform(src, cv);
               (void)r;
             });
    }
  }

  // One full Apply compute task at reduced rank count (M = 16).
  for (const std::size_t k : h.quick() ? std::vector<std::size_t>{10}
                                       : std::vector<std::size_t>{10, 20}) {
    const std::size_t d = 3, terms = 16;
    Rng rng(h.seed_or(4));
    Tensor source = Tensor::cube(d, k);
    for (auto& x : source.flat()) x = rng.uniform(-1.0, 1.0);
    std::vector<std::vector<double>> mats(terms * d,
                                          std::vector<double>(k * k));
    std::vector<MatrixView> views;
    for (auto& m : mats) {
      for (auto& x : m) x = rng.uniform(-1.0, 1.0);
      views.emplace_back(m.data(), k, k);
    }
    std::vector<double> coeffs(terms, 1.0);
    const gpu::ApplyTaskShape shape{d, k, terms};
    record(h, t, "fused_task_k" + std::to_string(k), shape.flops(), [&] {
      Tensor r = gpu::custom_fused_compute(source, views, coeffs);
      (void)r;
    });
  }

  // Flight-recorder overhead: the packed mTxm k=10 loop, bare vs with one
  // recorded span per task-sized block of work (~16 GEMMs, tens of µs —
  // the granularity the runtime actually wraps spans around) into a
  // bounded ring-buffer session. The recorded path pays span mint +
  // lock-free append, and — once the smallest ring fills — the chunk
  // recycle path too. The ratio gates the "<3% median overhead" promise of
  // always-on recording (the CI gate allows wall-clock jitter on top).
  {
    const std::size_t k = 10, rows = k * k;
    Rng rng(h.seed_or(5));
    std::vector<double> a(k * rows), b(k * k), c(rows * k, 0.0);
    for (auto& x : a) x = rng.uniform(-1.0, 1.0);
    for (auto& x : b) x = rng.uniform(-1.0, 1.0);
    const std::size_t per_span = 16;
    const std::size_t blocks = h.quick() ? 128 : 512;
    const SampleSummary off = h.measure("mTxm_k10_recorder_off", [&] {
      for (std::size_t blk = 0; blk < blocks; ++blk) {
        for (std::size_t i = 0; i < per_span; ++i) {
          linalg::mTxm(rows, k, k, c.data(), a.data(), b.data());
        }
      }
    });
    obs::FlightRecorder rec({.path = "",
                             .spans_per_thread = 1024,
                             .install_as_current = false,
                             .dump_at_exit = false,
                             .dump_on_fault = false});
    obs::TraceSession& s = rec.session();
    const SampleSummary on = h.measure("mTxm_k10_recorder_on", [&] {
      for (std::size_t blk = 0; blk < blocks; ++blk) {
        obs::ScopedSpan span(&s, "task", obs::Category::kCpuCompute);
        for (std::size_t i = 0; i < per_span; ++i) {
          linalg::mTxm(rows, k, k, c.data(), a.data(), b.data());
        }
      }
    });
    const double ratio = off.p50 > 0.0 ? on.p50 / off.p50 : 1.0;
    t.add_row({"flight_recorder_overhead", fmt(ratio, 4) + "x",
               fmt((ratio - 1.0) * 100.0, 2) + "%",
               fmt(static_cast<double>(s.dropped_spans()), 0) + " dropped"});
    h.scalar("flight_recorder_overhead_ratio", ratio, "x",
             Direction::kLowerIsBetter, /*gate=*/true);
    if (ratio > 1.03) {
      std::cout << "note: flight-recorder overhead " << fmt(ratio, 4)
                << "x exceeds the 3% design target on this host\n";
    }
  }

  t.print(std::cout);
  print_footnote(
      "native wall clock: numbers vary with the host; recorded ungated.");
  return h.finish();
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
