// Reproduces Table II: Coulomb d=3, k=20, precision 1e-10 (no rank
// reduction) on one Titan node — the larger-tensor regime where cuBLAS
// performs well. 16 CPU threads vs GPU vs hybrid.
#include <iostream>

#include "bench_common.hpp"
#include "bench_harness.hpp"
#include "runtime/dispatch.hpp"

namespace {

using namespace mh;
using namespace mh::bench;

int run(int argc, char** argv) {
  Harness h("table2", argc, argv);
  const cluster::Workload w = apps::table2_workload();
  cluster::ClusterConfig base = apps::titan_config();
  base.nodes = 1;
  base.gpu.use_custom_kernel = false;  // k=20: cuBLAS regime (paper §III)
  const cluster::NodeLoads loads{w.tasks};

  print_header(
      "Table II — Coulomb d=3, k=20, precision 1e-10 (no rank reduction), "
      "1 Titan node, cuBLAS kernels");
  std::cout << "workload: " << w.name << ", " << w.tasks
            << " compute tasks\n\n";

  auto cpu_cfg = base;
  cpu_cfg.mode = cluster::ComputeMode::kCpuOnly;
  cpu_cfg.cpu_compute_threads = 16;
  const double m = run_cluster(w, loads, cpu_cfg).sec;

  auto gpu_cfg = base;
  gpu_cfg.mode = cluster::ComputeMode::kGpuOnly;
  const double n = run_cluster(w, loads, gpu_cfg).sec;

  auto hyb_cfg = base;
  hyb_cfg.mode = cluster::ComputeMode::kHybrid;
  hyb_cfg.cpu_compute_threads = 15;  // paper: 15 threads in the hybrid run
  const double actual = run_cluster(w, loads, hyb_cfg).sec;
  const double optimal = rt::optimal_overlap_time(m, n);

  TextTable t({"configuration", "measured (s)", "paper (s)"});
  t.add_row({"CPU 16 threads", fmt(m), fmt(173.3)});
  t.add_row({"GPU", fmt(n), fmt(136.6)});
  t.add_row({"CPU + GPU (actual)", fmt(actual), fmt(99.0)});
  t.add_row({"CPU + GPU (optimal overlap)", fmt(optimal), fmt(76.2)});
  t.print(std::cout);

  h.scalar("cpu16_s", m, "s");
  h.scalar("gpu_s", n, "s");
  h.scalar("hybrid_actual_s", actual, "s");
  h.scalar("hybrid_optimal_overlap_s", optimal, "s");
  return h.finish();
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
