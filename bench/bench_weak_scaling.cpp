// Extension experiment (not in the paper): weak scaling of the simulated
// cluster — fixed work per node while the partition grows. Under the even
// process map the makespan should stay flat (MADNESS's communication adds
// only a small per-node term); under the locality map the power-law subtree
// distribution erodes it. This isolates the load-imbalance mechanism the
// paper holds responsible for its sublinear strong scaling.
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "bench_harness.hpp"
#include "common/diagnostics.hpp"
#include "obs/critical_path.hpp"
#include "obs/trace.hpp"
#include "obs/trace_reader.hpp"

namespace {

using namespace mh;
using namespace mh::bench;

// Multi-rank causal tracing: rerun the 4-node hybrid point with one
// TraceSession per simulated rank, stitch them into a single merged Chrome
// trace (rank-qualified pids), and run the critical-path / overlap-model
// analyzer over the merged DAG. Gates the overlap scalars at the default
// seed — the cross-rank analogue of bench_breakdown's single-node gate.
void traced_multirank_point(Harness& h, const cluster::Workload& w,
                            cluster::ClusterConfig cfg, bool gate) {
  const std::size_t nodes = cfg.nodes;
  std::vector<std::unique_ptr<obs::TraceSession>> sessions;
  for (std::size_t i = 0; i < nodes; ++i) {
    sessions.push_back(std::make_unique<obs::TraceSession>());
    cfg.node_traces.push_back(sessions.back().get());
  }
  const auto loads = cluster::even_map(w.tasks, nodes);
  const auto result = cluster::run_cluster_apply(w, loads, cfg);
  if (!result.feasible) return;

  std::vector<obs::RankedSession> ranked;
  for (std::size_t i = 0; i < nodes; ++i) {
    ranked.push_back({"rank" + std::to_string(i), sessions[i].get()});
  }
  std::stringstream ss;
  obs::write_merged_chrome_trace(ss, ranked);
  obs::ReadTrace trace;
  std::string error;
  MH_CHECK(obs::read_chrome_trace(ss, &trace, &error),
           "merged trace must parse: " + error);
  const obs::TraceAnalysis a = obs::analyze_trace(trace);
  std::cout << "\ntraced 4-node hybrid: overlap efficiency "
            << fmt(a.overlap_efficiency, 3) << " over " << a.batches.size()
            << " batches, split residual |k-k*| "
            << fmt(a.split_residual_abs, 4) << ", slowest rank "
            << (a.stragglers.empty() ? std::string("-")
                                     : a.stragglers.front().name)
            << "\n";
  h.scalar("traced4_overlap_efficiency", a.overlap_efficiency, "",
           Direction::kHigherIsBetter, gate);
  h.scalar("traced4_split_residual", a.split_residual_abs, "",
           Direction::kLowerIsBetter, gate);
}

int run(int argc, char** argv) {
  Harness h("weak_scaling", argc, argv);
  print_header(
      "Weak scaling (extension) — Coulomb d=3, k=10 hybrid, 1,200 tasks "
      "per node");
  const std::size_t per_node = 1200;
  const std::uint64_t seed = h.seed_or(4242);
  bool traced_point_done = false;

  TextTable t({"nodes", "even map (s)", "locality map (s)", "imbalance",
               "LPT map (s)", "LPT imbalance"});
  for (std::size_t nodes : {1u, 4u, 16u, 64u, 256u}) {
    if (h.quick() && nodes > 16) continue;
    const std::size_t tasks = per_node * nodes;
    cluster::Workload w = cluster::make_workload(
        "weak", gpu::ApplyTaskShape{3, 10, 100}, tasks,
        std::max<std::size_t>(8, nodes * 4), 1.2, seed);

    auto cfg = apps::titan_config();
    cfg.nodes = nodes;
    cfg.mode = cluster::ComputeMode::kHybrid;
    cfg.cpu_compute_threads = 15;

    const RunSec even = run_cluster(w, cluster::even_map(tasks, nodes), cfg);
    const auto local_loads = cluster::locality_map(w.group_sizes, nodes, 17);
    const RunSec local = run_cluster(w, local_loads, cfg);
    const auto lpt_loads = cluster::lpt_map(w.group_sizes, nodes);
    const RunSec lpt = run_cluster(w, lpt_loads, cfg);

    t.add_row({std::to_string(nodes), fmt(even, 2), fmt(local, 2),
               fmt(cluster::imbalance(local_loads), 2) + "x", fmt(lpt, 2),
               fmt(cluster::imbalance(lpt_loads), 2) + "x"});
    const std::string prefix = "nodes_" + std::to_string(nodes);
    // Gate only at the default seed: a --seed override changes the
    // workload itself, not the machine.
    const bool gate = seed == 4242;
    h.scalar(prefix + "_even_s", even.sec, "s", Direction::kLowerIsBetter,
             gate);
    h.scalar(prefix + "_locality_s", local.sec, "s",
             Direction::kLowerIsBetter, gate);
    h.scalar(prefix + "_lpt_s", lpt.sec, "s", Direction::kLowerIsBetter,
             gate);
    if (nodes == 4) {
      traced_multirank_point(h, w, cfg, gate);
      traced_point_done = true;
    }
  }
  MH_CHECK(traced_point_done, "4-node traced point must run");
  t.print(std::cout);
  print_footnote(
      "flat even-map rows = the machine scales; rising locality rows = the\n"
      "hashed subtree map, not the hardware, limits the paper's strong\n"
      "scaling. The LPT columns (this library's extension: subtrees placed\n"
      "largest-first onto the least-loaded node) recover balance while any\n"
      "assignment can — but once a single subtree outweighs the ideal\n"
      "per-node load (64+ nodes here) NO static whole-subtree map helps:\n"
      "the paper's 'larger applications would scale beyond' in mechanism.");
  return h.finish();
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
