// Extension experiment (not in the paper): weak scaling of the simulated
// cluster — fixed work per node while the partition grows. Under the even
// process map the makespan should stay flat (MADNESS's communication adds
// only a small per-node term); under the locality map the power-law subtree
// distribution erodes it. This isolates the load-imbalance mechanism the
// paper holds responsible for its sublinear strong scaling.
#include <iostream>

#include "bench_common.hpp"
#include "bench_harness.hpp"

namespace {

using namespace mh;
using namespace mh::bench;

int run(int argc, char** argv) {
  Harness h("weak_scaling", argc, argv);
  print_header(
      "Weak scaling (extension) — Coulomb d=3, k=10 hybrid, 1,200 tasks "
      "per node");
  const std::size_t per_node = 1200;
  const std::uint64_t seed = h.seed_or(4242);

  TextTable t({"nodes", "even map (s)", "locality map (s)", "imbalance",
               "LPT map (s)", "LPT imbalance"});
  for (std::size_t nodes : {1u, 4u, 16u, 64u, 256u}) {
    if (h.quick() && nodes > 16) continue;
    const std::size_t tasks = per_node * nodes;
    cluster::Workload w = cluster::make_workload(
        "weak", gpu::ApplyTaskShape{3, 10, 100}, tasks,
        std::max<std::size_t>(8, nodes * 4), 1.2, seed);

    auto cfg = apps::titan_config();
    cfg.nodes = nodes;
    cfg.mode = cluster::ComputeMode::kHybrid;
    cfg.cpu_compute_threads = 15;

    const RunSec even = run_cluster(w, cluster::even_map(tasks, nodes), cfg);
    const auto local_loads = cluster::locality_map(w.group_sizes, nodes, 17);
    const RunSec local = run_cluster(w, local_loads, cfg);
    const auto lpt_loads = cluster::lpt_map(w.group_sizes, nodes);
    const RunSec lpt = run_cluster(w, lpt_loads, cfg);

    t.add_row({std::to_string(nodes), fmt(even, 2), fmt(local, 2),
               fmt(cluster::imbalance(local_loads), 2) + "x", fmt(lpt, 2),
               fmt(cluster::imbalance(lpt_loads), 2) + "x"});
    const std::string prefix = "nodes_" + std::to_string(nodes);
    // Gate only at the default seed: a --seed override changes the
    // workload itself, not the machine.
    const bool gate = seed == 4242;
    h.scalar(prefix + "_even_s", even.sec, "s", Direction::kLowerIsBetter,
             gate);
    h.scalar(prefix + "_locality_s", local.sec, "s",
             Direction::kLowerIsBetter, gate);
    h.scalar(prefix + "_lpt_s", lpt.sec, "s", Direction::kLowerIsBetter,
             gate);
  }
  t.print(std::cout);
  print_footnote(
      "flat even-map rows = the machine scales; rising locality rows = the\n"
      "hashed subtree map, not the hardware, limits the paper's strong\n"
      "scaling. The LPT columns (this library's extension: subtrees placed\n"
      "largest-first onto the least-loaded node) recover balance while any\n"
      "assignment can — but once a single subtree outweighs the ideal\n"
      "per-node load (64+ nodes here) NO static whole-subtree map helps:\n"
      "the paper's 'larger applications would scale beyond' in mechanism.");
  return h.finish();
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
