// Elastic-recovery cost model: what node churn does to a distributed
// Apply, and what recovery costs as the replication factor grows.
//
// Two sweeps over the churn simulator (clustersim/churn.hpp), both on the
// deterministic simulated clock so every number gates against the
// checked-in baseline:
//
//   throughput vs churn rate — R = 2, 0..4 kill/re-add pairs spread across
//       the run: makespan, recovery time, and recovery traffic per level.
//       Every churned run is checked bitwise against the fault-free
//       reference before anything is recorded — a bench that silently
//       computed a different answer would be measuring a bug.
//   recovery time vs R       — one mid-run kill at R = 1 (checkpoint
//       restart into a resized world), R = 2 and R = 3 (replica
//       promotion): the redundancy-vs-recovery-cost tradeoff.
#include <algorithm>
#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "bench_harness.hpp"
#include "apps/coulomb.hpp"
#include "clustersim/churn.hpp"
#include "common/diagnostics.hpp"
#include "common/table.hpp"
#include "mra/function.hpp"

namespace {

using namespace mh;
using namespace mh::bench;

constexpr std::uint64_t kDefaultSeed = 13;

mra::Function make_bench_function() {
  mra::FunctionParams p;
  p.ndim = 1;
  p.k = 7;
  p.thresh = 1e-6;
  p.initial_level = 4;
  auto f_fn = [](std::span<const double> x) {
    const double u = (x[0] - 0.45) / 0.1;
    return std::exp(-u * u);
  };
  return mra::Function::project(f_fn, p);
}

cluster::ChurnConfig make_config(std::uint64_t seed) {
  cluster::ChurnConfig config;
  config.ranks = 8;
  config.subtree_level = 2;
  config.replication = 2;
  config.seed = seed;
  return config;
}

void check_bitwise(const mra::Function& got, const mra::Function& want) {
  const auto keys = want.leaf_keys();
  const auto got_keys = got.leaf_keys();
  MH_CHECK(keys.size() == got_keys.size(),
           "churned run changed the leaf structure");
  for (std::size_t i = 0; i < keys.size(); ++i) {
    MH_CHECK(keys[i] == got_keys[i] &&
                 want.leaf_coeffs(keys[i]) == got.leaf_coeffs(keys[i]),
             "churned run is not bitwise-equal to the fault-free reference");
  }
}

// Ranks that actually hold leaves under this placement. Subtree
// co-location concentrates shards on a few ranks; killing an empty rank
// would measure nothing.
std::vector<std::size_t> loaded_ranks(const mra::Function& f,
                                      const cluster::ChurnConfig& config) {
  dht::ElasticFunction probe(f, config.ranks, config.subtree_level,
                             config.replication, config.seed);
  std::vector<std::size_t> loaded;
  for (std::size_t r = 0; r < probe.ranks(); ++r) {
    if (probe.store().shard_size(r) > 0) loaded.push_back(r);
  }
  MH_CHECK(!loaded.empty(), "no rank holds any leaf");
  return loaded;
}

// `kills` kill/re-add pairs spread evenly across a run of duration
// `makespan`, cycling through the loaded ranks; each victim rejoins half
// a slot after it dies.
std::vector<cluster::ChurnEvent> make_churn_script(
    std::size_t kills, SimTime makespan,
    const std::vector<std::size_t>& victims) {
  std::vector<cluster::ChurnEvent> events;
  const SimTime slot = makespan / static_cast<double>(kills + 1);
  for (std::size_t j = 0; j < kills; ++j) {
    const std::size_t rank = victims[j % victims.size()];
    const SimTime at = slot * static_cast<double>(j + 1);
    events.push_back({cluster::ChurnEvent::Kind::kKill, at, rank});
    events.push_back({cluster::ChurnEvent::Kind::kAdd, at + slot * 0.5,
                      rank});
  }
  std::sort(events.begin(), events.end(),
            [](const cluster::ChurnEvent& a, const cluster::ChurnEvent& b) {
              return a.at < b.at;
            });
  return events;
}

int run(int argc, char** argv) {
  Harness h("elastic", argc, argv);
  const std::uint64_t seed = h.seed_or(kDefaultSeed);
  // Simulated results are seed-exact; gate only the baseline seed so
  // exploratory --seed runs never fight the checked-in numbers.
  const bool gate = seed == kDefaultSeed;

  const mra::Function f = make_bench_function();
  const auto op = apps::make_smoothing_operator(1, 7, 0.08, 8, 1e-7);

  // Fault-free reference: the bitwise target and the churn-script clock.
  const cluster::ChurnResult ref =
      cluster::run_churn_apply(op, f, make_config(seed));
  MH_CHECK(ref.stats.tasks > 0, "empty apply schedule");

  std::cout << "Throughput vs churn rate (R=2, " << ref.stats.tasks
            << " tasks, 8 ranks)\n";
  TextTable churn_table({"kill/re-add pairs", "makespan ms", "recovery ms",
                         "recovery MB", "tasks re-homed", "throughput k/s"});
  const std::vector<std::size_t> churn_levels =
      h.quick() ? std::vector<std::size_t>{0, 2}
                : std::vector<std::size_t>{0, 1, 2, 4};
  const std::vector<std::size_t> victims =
      loaded_ranks(f, make_config(seed));
  for (const std::size_t kills : churn_levels) {
    cluster::ChurnConfig config = make_config(seed);
    config.events = make_churn_script(kills, ref.stats.makespan, victims);
    const cluster::ChurnResult r = cluster::run_churn_apply(op, f, config);
    check_bitwise(r.result, ref.result);
    const double throughput =
        static_cast<double>(r.stats.tasks) / r.stats.makespan.sec() / 1e3;
    churn_table.add_row({std::to_string(kills),
                         TextTable::num(r.stats.makespan.ms(), 3),
                         TextTable::num(r.stats.recovery_time.ms(), 3),
                         TextTable::num(r.stats.recovery_bytes / 1e6, 3),
                         std::to_string(r.stats.rehomed_tasks),
                         TextTable::num(throughput, 1)});
    const std::string prefix = "churn/kills" + std::to_string(kills);
    h.scalar(prefix + "/makespan_ms", r.stats.makespan.ms(), "ms",
             Direction::kLowerIsBetter, gate);
    h.scalar(prefix + "/recovery_ms", r.stats.recovery_time.ms(), "ms",
             Direction::kLowerIsBetter, gate);
    h.scalar(prefix + "/recovery_bytes", r.stats.recovery_bytes, "bytes",
             Direction::kLowerIsBetter, gate);
  }
  churn_table.print(std::cout);

  std::cout << "\nRecovery time vs replication (one mid-run kill)\n";
  TextTable r_table({"R", "mechanism", "recovery ms", "recovery MB",
                     "makespan ms"});
  for (const std::size_t replication : {1u, 2u, 3u}) {
    cluster::ChurnConfig config = make_config(seed);
    config.replication = replication;
    // R=1 cannot promote replicas; checkpoints make the kill survivable
    // through a restart into the surviving ranks.
    if (replication == 1) config.checkpoint_every = 32;
    const cluster::ChurnResult plain = cluster::run_churn_apply(op, f,
                                                                config);
    // Kill a rank that holds leaves (guaranteed data loss at R=1).
    const std::size_t victim = loaded_ranks(f, config).front();
    config.events = {{cluster::ChurnEvent::Kind::kKill,
                      plain.stats.makespan * 0.5, victim}};
    const cluster::ChurnResult r = cluster::run_churn_apply(op, f, config);
    check_bitwise(r.result, plain.result);
    check_bitwise(r.result, ref.result);
    r_table.add_row({std::to_string(replication),
                     replication == 1 ? "checkpoint restart"
                                      : "replica promotion",
                     TextTable::num(r.stats.recovery_time.ms(), 3),
                     TextTable::num(r.stats.recovery_bytes / 1e6, 3),
                     TextTable::num(r.stats.makespan.ms(), 3)});
    const std::string prefix = "recovery/r" + std::to_string(replication);
    h.scalar(prefix + "/recovery_ms", r.stats.recovery_time.ms(), "ms",
             Direction::kLowerIsBetter, gate);
    h.scalar(prefix + "/recovery_bytes", r.stats.recovery_bytes, "bytes",
             Direction::kLowerIsBetter, gate);
    h.scalar(prefix + "/makespan_ms", r.stats.makespan.ms(), "ms",
             Direction::kLowerIsBetter, gate);
    if (replication == 1) {
      MH_CHECK(r.stats.restarts == 1,
               "R=1 kill must recover through a checkpoint restart");
    } else {
      MH_CHECK(r.stats.restarts == 0 && r.stats.lost_leaves == 0,
               "R>=2 kill must recover through replica promotion");
    }
  }
  r_table.print(std::cout);

  return h.finish();
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
