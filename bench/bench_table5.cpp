// Reproduces Table V: 3-D Coulomb with k=30, precision 1e-12, 1-8 nodes,
// MADNESS locality process map (uneven), rank reduction on the CPU.
// CPU-only (with and without rank reduction), GPU-only, hybrid actual and
// optimal-overlap columns.
#include <iostream>

#include "bench_common.hpp"
#include "bench_harness.hpp"
#include "runtime/dispatch.hpp"

namespace {

using namespace mh;
using namespace mh::bench;

int run(int argc, char** argv) {
  Harness h("table5", argc, argv);
  const cluster::Workload w = apps::table5_workload();

  print_header(
      "Table V — Coulomb d=3, k=30, precision 1e-12; 16 CPU threads vs "
      "6 streams + 15 threads; locality process map");
  std::cout << "workload: " << w.name << ", " << w.tasks
            << " compute tasks in " << w.group_sizes.size()
            << " subtree groups\n\n";

  const std::size_t nodes[] = {1, 2, 4, 6, 8};
  const double paper_cpu_rr[] = {147, 115, 114, 96, 102};
  const double paper_cpu[] = {447, 299, 234, 201, 205};
  const double paper_gpu[] = {212, 90, 55, 35, 37};
  const double paper_hybrid[] = {172, 60, 39, 25, 25};
  const double paper_optimal[] = {144, 69, 45, 30, 31};

  TextTable t({"nodes", "CPU rr", "CPU", "GPU", "hybrid", "optimal",
               "paper: CPU rr", "CPU", "GPU", "hybrid", "optimal"});
  for (std::size_t i = 0; i < std::size(nodes); ++i) {
    if (h.quick() && nodes[i] != 1 && nodes[i] != 8) continue;
    const auto loads = cluster::locality_map(w.group_sizes, nodes[i], 105);

    auto cpu_cfg = apps::titan_config();
    cpu_cfg.nodes = nodes[i];
    cpu_cfg.mode = cluster::ComputeMode::kCpuOnly;
    cpu_cfg.cpu_compute_threads = 16;
    const RunSec cpu = run_cluster(w, loads, cpu_cfg);

    auto rr_cfg = cpu_cfg;
    rr_cfg.rank_reduce = true;
    rr_cfg.rank_fraction = apps::table5_rank_fraction();
    const RunSec cpu_rr = run_cluster(w, loads, rr_cfg);

    auto gpu_cfg = apps::titan_config();
    gpu_cfg.nodes = nodes[i];
    gpu_cfg.mode = cluster::ComputeMode::kGpuOnly;
    const RunSec gpu = run_cluster(w, loads, gpu_cfg);

    auto hyb_cfg = apps::titan_config();
    hyb_cfg.nodes = nodes[i];
    hyb_cfg.mode = cluster::ComputeMode::kHybrid;
    hyb_cfg.cpu_compute_threads = 15;
    const RunSec hybrid = run_cluster(w, loads, hyb_cfg);

    const bool overlap_known = cpu.feasible && gpu.feasible;
    const double optimal =
        overlap_known ? rt::optimal_overlap_time(cpu.sec, gpu.sec) : 0.0;

    t.add_row({std::to_string(nodes[i]), fmt(cpu_rr, 0), fmt(cpu, 0),
               fmt(gpu, 0), fmt(hybrid, 0), fmt(optimal, 0, overlap_known),
               fmt(paper_cpu_rr[i], 0), fmt(paper_cpu[i], 0),
               fmt(paper_gpu[i], 0), fmt(paper_hybrid[i], 0),
               fmt(paper_optimal[i], 0)});
    const std::string prefix = "nodes_" + std::to_string(nodes[i]);
    h.scalar(prefix + "_cpu_rr_s", cpu_rr.sec, "s");
    h.scalar(prefix + "_cpu_s", cpu.sec, "s");
    h.scalar(prefix + "_gpu_s", gpu.sec, "s");
    h.scalar(prefix + "_hybrid_s", hybrid.sec, "s");
  }
  t.print(std::cout);
  print_footnote(
      "note: CPU-only columns use 16 threads; GPU-only and hybrid use 6 "
      "CUDA streams and 15 CPU threads, as in the paper.");
  return h.finish();
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
