// Reproduces Table IV: 3-D Coulomb (k=10, precision 1e-11; 154,468 tasks)
// with custom CUDA kernels vs cuBLAS 4.1, 16-100 nodes, even distribution.
#include <iostream>

#include "bench_common.hpp"
#include "bench_harness.hpp"

namespace {

using namespace mh;
using namespace mh::bench;

int run(int argc, char** argv) {
  Harness h("table4", argc, argv);
  const cluster::Workload w = apps::table4_workload();

  print_header(
      "Table IV — Coulomb d=3, k=10, precision 1e-11; GPU-only compute, "
      "even work distribution");
  std::cout << "workload: " << w.name << ", " << w.tasks
            << " compute tasks (count from the paper)\n\n";

  const std::size_t nodes[] = {16, 32, 64, 100};
  const double paper_custom[] = {27.6, 15.0, 10.2, 7.6};
  const double paper_cublas[] = {43.2, 24.2, 15.6, 11.0};

  TextTable t({"nodes", "custom (s)", "cuBLAS (s)", "ratio", "paper custom",
               "paper cuBLAS", "paper ratio"});
  for (std::size_t i = 0; i < std::size(nodes); ++i) {
    if (h.quick() && nodes[i] != 16 && nodes[i] != 100) continue;
    auto cfg = apps::titan_config();
    cfg.nodes = nodes[i];
    cfg.mode = cluster::ComputeMode::kGpuOnly;
    const auto loads = cluster::even_map(w.tasks, nodes[i]);

    cfg.gpu.use_custom_kernel = true;
    const RunSec custom = run_cluster(w, loads, cfg);
    cfg.gpu.use_custom_kernel = false;
    const RunSec cublas = run_cluster(w, loads, cfg);
    const bool both = custom.feasible && cublas.feasible;

    t.add_row({std::to_string(nodes[i]), fmt(custom), fmt(cublas),
               fmt(cublas.sec / custom.sec, 2, both), fmt(paper_custom[i]),
               fmt(paper_cublas[i]),
               fmt(paper_cublas[i] / paper_custom[i], 2)});
    const std::string prefix = "nodes_" + std::to_string(nodes[i]);
    h.scalar(prefix + "_custom_s", custom.sec, "s");
    h.scalar(prefix + "_cublas_s", cublas.sec, "s");
  }
  t.print(std::cout);

  {
    auto cfg = apps::titan_config();
    cfg.nodes = 8;
    cfg.mode = cluster::ComputeMode::kGpuOnly;
    const RunSec eight = run_cluster(w, cluster::even_map(w.tasks, 8), cfg);
    print_footnote(!eight.feasible
                       ? "8 nodes: infeasible — " + eight.note +
                             " (paper: same)"
                       : "8 nodes unexpectedly feasible: model drift!");
    if (eight.feasible) {
      h.scalar("nodes_8_custom_s", eight.sec, "s");
    } else {
      h.scalar_infeasible("nodes_8_custom_s", "s");
    }
  }
  return h.finish();
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
