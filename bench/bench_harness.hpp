// Machine-readable bench harness shared by every bench_* binary.
//
// Each bench keeps its human-facing tables (TextTable on stdout) and
// additionally records its key results through a Harness: deterministic
// simulated-time scalars via scalar(), wall-clock measurements via
// measure() (warmup + repeats, summarized as median/p95/CoV through
// common/stats). finish() writes one BENCH_<name>.json per run when
// --json is given, embedding the final metrics snapshot of the global
// MetricsRegistry so every perf record carries runtime-health context,
// and honors MH_METRICS=path like the library does.
//
// Flags understood by every bench:
//   --json <path>   write the machine-readable record to <path>
//   --quick         CI tier: benches subsample their sweeps; fewer repeats
//   --seed <n>      override the bench's default RNG seed (common/rng.hpp)
//   --repeats <n>   wall-clock repeats for measure() (default 5; 3 quick)
//   --warmup <n>    discarded warmup runs for measure() (default 1; 0 quick)
//
// Scalars and measures declare a direction (lower/higher is better) and a
// gate flag: tools/bench_compare.py only fails CI on gated entries, so
// deterministic simulated-time results gate while native wall-clock ones
// (machine-dependent) ride along ungated.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/stats.hpp"

namespace mh::bench {

enum class Direction { kLowerIsBetter, kHigherIsBetter };

class Harness {
 public:
  /// Parses the flags above from argv; exits with a usage message on an
  /// unknown flag so typos fail loudly in CI.
  Harness(std::string name, int argc, char** argv);

  bool quick() const noexcept { return quick_; }
  int repeats() const noexcept { return repeats_; }
  int warmup() const noexcept { return warmup_; }

  /// The --seed value, or `fallback` (the bench's historical constant) when
  /// the flag was not given — so default output matches checked-in
  /// baselines while any seed stays one flag away.
  std::uint64_t seed_or(std::uint64_t fallback) const noexcept {
    return has_seed_ ? seed_ : fallback;
  }

  /// Record one deterministic result (e.g. a simulated makespan). Asserts
  /// on NaN — an infeasible configuration must be recorded via
  /// scalar_infeasible() instead of a sentinel value.
  void scalar(const std::string& name, double value, const std::string& unit,
              Direction direction = Direction::kLowerIsBetter,
              bool gate = true);
  /// Record that a configuration was infeasible (never gated).
  void scalar_infeasible(const std::string& name, const std::string& unit);

  /// Time `body` on this machine: `warmup()` discarded runs, then
  /// `repeats()` timed runs, summarized via common/stats. Records the
  /// summary (seconds) and returns it. Wall-clock results default to
  /// gate=false: they measure the host, not the model.
  SampleSummary measure(const std::string& name,
                        const std::function<void()>& body,
                        Direction direction = Direction::kLowerIsBetter,
                        bool gate = false);

  /// Record an already-collected sample set under `name`.
  void summary(const std::string& name, const std::vector<double>& samples,
               const std::string& unit,
               Direction direction = Direction::kLowerIsBetter,
               bool gate = false);

  /// Write BENCH_<name>.json if --json was given, export MH_METRICS if the
  /// variable is set, and return the process exit code (0).
  int finish();

 private:
  struct ScalarRec {
    std::string name;
    std::string unit;
    Direction direction;
    bool gate;
    bool feasible;
    double value;
  };
  struct SummaryRec {
    std::string name;
    std::string unit;
    Direction direction;
    bool gate;
    SampleSummary stats;
  };

  std::string name_;
  std::string json_path_;
  bool quick_ = false;
  bool has_seed_ = false;
  std::uint64_t seed_ = 0;
  int repeats_ = 5;
  int warmup_ = 1;
  std::vector<ScalarRec> scalars_;
  std::vector<SummaryRec> summaries_;
};

}  // namespace mh::bench
