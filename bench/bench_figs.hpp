// Shared machinery for Figures 5 and 6: GFLOPS of a batch of
// (k^{d-1}, k) x (k, k) matrix multiplications on the simulated GTX 480,
// custom fused kernel (cu_mtxm_kernel) vs per-GEMM cuBLAS launches.
#pragma once

#include <cstddef>

#include "gpusim/device.hpp"
#include "gpusim/gpu_executor.hpp"
#include "gpusim/kernels.hpp"

namespace mh::bench {

struct FigPoint {
  double custom_gflops = 0.0;
  double cublas_gflops = 0.0;
};

/// Time a batch of `count` multiplications of shape (k^{d-1}, k) x (k, k).
/// The custom path fuses the batch into `streams` kernels (task
/// parallelism across CUDA streams, §II-C); the cuBLAS path launches one
/// DGEMM per multiplication round-robin over the same streams.
inline FigPoint measure_batched_gemm(std::size_t ndim, std::size_t k,
                                     std::size_t count, std::size_t streams) {
  const gpu::DeviceSpec spec = gpu::DeviceSpec::gtx480();
  const gpu::KernelTuning tuning;

  // Flops of the whole batch.
  gpu::ApplyTaskShape unit{ndim, k, 1};
  const double flops =
      static_cast<double>(count) * unit.flops_per_step();

  FigPoint point;

  // Custom: split count into `streams` fused kernels as evenly as terms
  // allow (each kernel embeds steps = ndim * terms multiplications).
  {
    gpu::GpuDevice dev(spec, streams);
    const std::size_t per_kernel = count / streams;
    const std::size_t terms = (per_kernel + ndim - 1) / ndim;
    gpu::ApplyTaskShape shape{ndim, k, terms > 0 ? terms : 1};
    // Scale the duration so exactly `count` multiplications are charged.
    const SimTime full =
        gpu::custom_task_duration(spec, shape, tuning);
    const SimTime per_step = full / static_cast<double>(shape.steps());
    SimTime done = SimTime::zero();
    std::size_t remaining = count;
    for (std::size_t s = 0; s < streams && remaining > 0; ++s) {
      const std::size_t steps =
          (s + 1 == streams) ? remaining
                             : std::min(remaining, per_kernel > 0 ? per_kernel
                                                                  : count);
      done = max(done, dev.enqueue_kernel(
                           s, gpu::custom_sms_required(shape),
                           per_step * static_cast<double>(steps),
                           SimTime::zero()));
      remaining -= steps;
    }
    point.custom_gflops = flops / done.sec() / 1e9;
  }

  // cuBLAS: one launch per multiplication, round-robin over streams.
  {
    gpu::GpuDevice dev(spec, streams);
    const SimTime step =
        gpu::cublas_step_duration(spec, unit.rows(), k, tuning);
    std::vector<SimTime> ready(streams, SimTime::zero());
    SimTime done = SimTime::zero();
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t s = i % streams;
      ready[s] = dev.enqueue_kernel(s, spec.num_sms, step, ready[s]);
      done = max(done, ready[s]);
    }
    point.cublas_gflops = flops / done.sec() / 1e9;
  }
  return point;
}

}  // namespace mh::bench
