#include "bench_harness.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

#include "common/diagnostics.hpp"
#include "obs/export.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
extern char** environ;
#endif

namespace mh::bench {
namespace {

[[noreturn]] void usage_error(const std::string& name,
                              const std::string& what) {
  std::cerr << "bench_" << name << ": " << what
            << "\nusage: bench_" << name
            << " [--json <path>] [--quick] [--seed <n>] [--repeats <n>]"
               " [--warmup <n>]\n";
  std::exit(2);
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_number(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << "null";
    return;
  }
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::abs(v) < 1e15) {
    os << static_cast<long long>(v);
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  os << buf;
}

const char* direction_str(Direction d) {
  return d == Direction::kLowerIsBetter ? "lower" : "higher";
}

// --- provenance -------------------------------------------------------------
// Every BENCH_*.json records where its numbers came from, so
// tools/bench_compare.py can warn instead of silently comparing records
// from different machines/compilers/ISA tiers.

std::string prov_git_sha() {
  // CI exports the exact commit; local builds fall back to the SHA CMake
  // saw at configure time (may be stale against the working tree).
  if (const char* sha = std::getenv("GITHUB_SHA")) {
    if (*sha != '\0') return sha;
  }
#ifdef MH_GIT_SHA
  return MH_GIT_SHA;
#else
  return "unknown";
#endif
}

std::string prov_compiler() {
#if defined(__clang__)
  return std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
  return std::string("gcc ") + __VERSION__;
#else
  return "unknown";
#endif
}

std::string prov_cpu() {
  std::ifstream cpuinfo("/proc/cpuinfo");
  std::string line;
  while (std::getline(cpuinfo, line)) {
    const std::size_t colon = line.find(':');
    if (colon != std::string::npos &&
        line.compare(0, 10, "model name") == 0) {
      const std::size_t start = line.find_first_not_of(" \t", colon + 1);
      return start == std::string::npos ? "unknown" : line.substr(start);
    }
  }
  return "unknown";
}

// The ISA tier the batch-GEMM engine's runtime dispatch would pick here.
std::string prov_dispatch() {
#if defined(__x86_64__) || defined(_M_X64)
  if (__builtin_cpu_supports("avx512f")) return "avx512";
  if (__builtin_cpu_supports("avx2")) return "avx2";
  return "portable";
#else
  return "portable";
#endif
}

std::string prov_hostname() {
#if defined(__unix__) || defined(__APPLE__)
  char buf[256] = {};
  if (gethostname(buf, sizeof buf - 1) == 0 && buf[0] != '\0') return buf;
#endif
  return "unknown";
}

// Every MH_* variable in the environment: fault specs, steal policy
// overrides, trace/metrics destinations — anything that changes behaviour.
std::vector<std::pair<std::string, std::string>> prov_mh_env() {
  std::vector<std::pair<std::string, std::string>> out;
#if defined(__unix__) || defined(__APPLE__)
  for (char** e = environ; e != nullptr && *e != nullptr; ++e) {
    const std::string_view entry = *e;
    if (!entry.starts_with("MH_")) continue;
    const std::size_t eq = entry.find('=');
    if (eq == std::string_view::npos) continue;
    out.emplace_back(entry.substr(0, eq), entry.substr(eq + 1));
  }
  std::sort(out.begin(), out.end());
#endif
  return out;
}

}  // namespace

Harness::Harness(std::string name, int argc, char** argv)
    : name_(std::move(name)) {
  bool repeats_set = false, warmup_set = false;
  const auto value_of = [&](int& i, const char* flag) -> std::string {
    if (i + 1 >= argc) usage_error(name_, std::string(flag) + " needs a value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json_path_ = value_of(i, "--json");
    } else if (arg == "--quick") {
      quick_ = true;
    } else if (arg == "--seed") {
      has_seed_ = true;
      seed_ = std::strtoull(value_of(i, "--seed").c_str(), nullptr, 10);
    } else if (arg == "--repeats") {
      repeats_ = std::atoi(value_of(i, "--repeats").c_str());
      repeats_set = true;
    } else if (arg == "--warmup") {
      warmup_ = std::atoi(value_of(i, "--warmup").c_str());
      warmup_set = true;
    } else {
      usage_error(name_, "unknown flag: " + arg);
    }
  }
  if (quick_) {
    if (!repeats_set) repeats_ = 3;
    if (!warmup_set) warmup_ = 0;
  }
  if (repeats_ < 1) usage_error(name_, "--repeats must be >= 1");
  if (warmup_ < 0) usage_error(name_, "--warmup must be >= 0");
  // Honor MH_FLIGHT_RECORDER in every bench: the bounded recorder arms
  // before any engine work so a later fault (or a CI re-run after a gate
  // failure) leaves a dumpable trace behind. No-op when unset.
  obs::FlightRecorder::arm_from_env();
}

void Harness::scalar(const std::string& name, double value,
                     const std::string& unit, Direction direction,
                     bool gate) {
  MH_CHECK(!std::isnan(value), "scalar is NaN: " + name);
  scalars_.push_back({name, unit, direction, gate, /*feasible=*/true, value});
}

void Harness::scalar_infeasible(const std::string& name,
                                const std::string& unit) {
  scalars_.push_back({name, unit, Direction::kLowerIsBetter, /*gate=*/false,
                      /*feasible=*/false, 0.0});
}

SampleSummary Harness::measure(const std::string& name,
                               const std::function<void()>& body,
                               Direction direction, bool gate) {
  for (int i = 0; i < warmup_; ++i) body();
  std::vector<double> secs;
  secs.reserve(static_cast<std::size_t>(repeats_));
  for (int i = 0; i < repeats_; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    body();
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;
    secs.push_back(dt.count());
  }
  const SampleSummary s = summarize(secs);
  summaries_.push_back({name, "s", direction, gate, s});
  return s;
}

void Harness::summary(const std::string& name,
                      const std::vector<double>& samples,
                      const std::string& unit, Direction direction,
                      bool gate) {
  summaries_.push_back({name, unit, direction, gate, summarize(samples)});
}

int Harness::finish() {
  obs::export_metrics_from_env(obs::MetricsRegistry::global());
  if (json_path_.empty()) return 0;

  std::ostringstream os;
  os << "{\n  \"bench\": \"" << json_escape(name_) << "\",\n"
     << "  \"quick\": " << (quick_ ? "true" : "false") << ",\n"
     << "  \"seed\": ";
  if (has_seed_) {
    os << seed_;
  } else {
    os << "null";
  }
  os << ",\n  \"provenance\": {\n"
     << "    \"git_sha\": \"" << json_escape(prov_git_sha()) << "\",\n"
     << "    \"compiler\": \"" << json_escape(prov_compiler()) << "\",\n"
     << "    \"cpu\": \"" << json_escape(prov_cpu()) << "\",\n"
     << "    \"dispatch\": \"" << json_escape(prov_dispatch()) << "\",\n"
     << "    \"hostname\": \"" << json_escape(prov_hostname()) << "\",\n"
     << "    \"mh_env\": {";
  const auto mh_env = prov_mh_env();
  for (std::size_t i = 0; i < mh_env.size(); ++i) {
    os << (i ? ", " : "") << "\"" << json_escape(mh_env[i].first) << "\": \""
       << json_escape(mh_env[i].second) << "\"";
  }
  os << "}\n  },\n  \"scalars\": [";
  for (std::size_t i = 0; i < scalars_.size(); ++i) {
    const ScalarRec& r = scalars_[i];
    os << (i ? ",\n    " : "\n    ") << "{\"name\": \"" << json_escape(r.name)
       << "\", \"unit\": \"" << json_escape(r.unit) << "\", \"direction\": \""
       << direction_str(r.direction)
       << "\", \"gate\": " << (r.gate ? "true" : "false")
       << ", \"feasible\": " << (r.feasible ? "true" : "false")
       << ", \"value\": ";
    if (r.feasible) {
      write_number(os, r.value);
    } else {
      os << "null";
    }
    os << "}";
  }
  os << (scalars_.empty() ? "]" : "\n  ]") << ",\n  \"measures\": [";
  for (std::size_t i = 0; i < summaries_.size(); ++i) {
    const SummaryRec& r = summaries_[i];
    os << (i ? ",\n    " : "\n    ") << "{\"name\": \"" << json_escape(r.name)
       << "\", \"unit\": \"" << json_escape(r.unit) << "\", \"direction\": \""
       << direction_str(r.direction)
       << "\", \"gate\": " << (r.gate ? "true" : "false")
       << ", \"count\": " << r.stats.count << ", \"mean\": ";
    write_number(os, r.stats.mean);
    os << ", \"stddev\": ";
    write_number(os, r.stats.stddev);
    os << ", \"min\": ";
    write_number(os, r.stats.min);
    os << ", \"max\": ";
    write_number(os, r.stats.max);
    os << ", \"p50\": ";
    write_number(os, r.stats.p50);
    os << ", \"p95\": ";
    write_number(os, r.stats.p95);
    os << ", \"p99\": ";
    write_number(os, r.stats.p99);
    os << ", \"p999\": ";
    write_number(os, r.stats.p999);
    os << ", \"cov\": ";
    write_number(os, r.stats.cov);
    os << "}";
  }
  os << (summaries_.empty() ? "]" : "\n  ]") << ",\n  \"metrics\": "
     << obs::json_snapshot(obs::MetricsRegistry::global()) << "\n}\n";

  std::ofstream f(json_path_);
  if (!f) {
    std::cerr << "bench_" << name_ << ": cannot write " << json_path_ << "\n";
    return 1;
  }
  f << os.str();
  std::cout << "json: wrote " << json_path_ << "\n";
  return f.good() ? 0 : 1;
}

}  // namespace mh::bench
