#include "bench_harness.hpp"

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

#include "common/diagnostics.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"

namespace mh::bench {
namespace {

[[noreturn]] void usage_error(const std::string& name,
                              const std::string& what) {
  std::cerr << "bench_" << name << ": " << what
            << "\nusage: bench_" << name
            << " [--json <path>] [--quick] [--seed <n>] [--repeats <n>]"
               " [--warmup <n>]\n";
  std::exit(2);
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_number(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << "null";
    return;
  }
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::abs(v) < 1e15) {
    os << static_cast<long long>(v);
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  os << buf;
}

const char* direction_str(Direction d) {
  return d == Direction::kLowerIsBetter ? "lower" : "higher";
}

}  // namespace

Harness::Harness(std::string name, int argc, char** argv)
    : name_(std::move(name)) {
  bool repeats_set = false, warmup_set = false;
  const auto value_of = [&](int& i, const char* flag) -> std::string {
    if (i + 1 >= argc) usage_error(name_, std::string(flag) + " needs a value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json_path_ = value_of(i, "--json");
    } else if (arg == "--quick") {
      quick_ = true;
    } else if (arg == "--seed") {
      has_seed_ = true;
      seed_ = std::strtoull(value_of(i, "--seed").c_str(), nullptr, 10);
    } else if (arg == "--repeats") {
      repeats_ = std::atoi(value_of(i, "--repeats").c_str());
      repeats_set = true;
    } else if (arg == "--warmup") {
      warmup_ = std::atoi(value_of(i, "--warmup").c_str());
      warmup_set = true;
    } else {
      usage_error(name_, "unknown flag: " + arg);
    }
  }
  if (quick_) {
    if (!repeats_set) repeats_ = 3;
    if (!warmup_set) warmup_ = 0;
  }
  if (repeats_ < 1) usage_error(name_, "--repeats must be >= 1");
  if (warmup_ < 0) usage_error(name_, "--warmup must be >= 0");
}

void Harness::scalar(const std::string& name, double value,
                     const std::string& unit, Direction direction,
                     bool gate) {
  MH_CHECK(!std::isnan(value), "scalar is NaN: " + name);
  scalars_.push_back({name, unit, direction, gate, /*feasible=*/true, value});
}

void Harness::scalar_infeasible(const std::string& name,
                                const std::string& unit) {
  scalars_.push_back({name, unit, Direction::kLowerIsBetter, /*gate=*/false,
                      /*feasible=*/false, 0.0});
}

SampleSummary Harness::measure(const std::string& name,
                               const std::function<void()>& body,
                               Direction direction, bool gate) {
  for (int i = 0; i < warmup_; ++i) body();
  std::vector<double> secs;
  secs.reserve(static_cast<std::size_t>(repeats_));
  for (int i = 0; i < repeats_; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    body();
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;
    secs.push_back(dt.count());
  }
  const SampleSummary s = summarize(secs);
  summaries_.push_back({name, "s", direction, gate, s});
  return s;
}

void Harness::summary(const std::string& name,
                      const std::vector<double>& samples,
                      const std::string& unit, Direction direction,
                      bool gate) {
  summaries_.push_back({name, unit, direction, gate, summarize(samples)});
}

int Harness::finish() {
  obs::export_metrics_from_env(obs::MetricsRegistry::global());
  if (json_path_.empty()) return 0;

  std::ostringstream os;
  os << "{\n  \"bench\": \"" << json_escape(name_) << "\",\n"
     << "  \"quick\": " << (quick_ ? "true" : "false") << ",\n"
     << "  \"seed\": ";
  if (has_seed_) {
    os << seed_;
  } else {
    os << "null";
  }
  os << ",\n  \"scalars\": [";
  for (std::size_t i = 0; i < scalars_.size(); ++i) {
    const ScalarRec& r = scalars_[i];
    os << (i ? ",\n    " : "\n    ") << "{\"name\": \"" << json_escape(r.name)
       << "\", \"unit\": \"" << json_escape(r.unit) << "\", \"direction\": \""
       << direction_str(r.direction)
       << "\", \"gate\": " << (r.gate ? "true" : "false")
       << ", \"feasible\": " << (r.feasible ? "true" : "false")
       << ", \"value\": ";
    if (r.feasible) {
      write_number(os, r.value);
    } else {
      os << "null";
    }
    os << "}";
  }
  os << (scalars_.empty() ? "]" : "\n  ]") << ",\n  \"measures\": [";
  for (std::size_t i = 0; i < summaries_.size(); ++i) {
    const SummaryRec& r = summaries_[i];
    os << (i ? ",\n    " : "\n    ") << "{\"name\": \"" << json_escape(r.name)
       << "\", \"unit\": \"" << json_escape(r.unit) << "\", \"direction\": \""
       << direction_str(r.direction)
       << "\", \"gate\": " << (r.gate ? "true" : "false")
       << ", \"count\": " << r.stats.count << ", \"mean\": ";
    write_number(os, r.stats.mean);
    os << ", \"stddev\": ";
    write_number(os, r.stats.stddev);
    os << ", \"min\": ";
    write_number(os, r.stats.min);
    os << ", \"max\": ";
    write_number(os, r.stats.max);
    os << ", \"p50\": ";
    write_number(os, r.stats.p50);
    os << ", \"p95\": ";
    write_number(os, r.stats.p95);
    os << ", \"cov\": ";
    write_number(os, r.stats.cov);
    os << "}";
  }
  os << (summaries_.empty() ? "]" : "\n  ]") << ",\n  \"metrics\": "
     << obs::json_snapshot(obs::MetricsRegistry::global()) << "\n}\n";

  std::ofstream f(json_path_);
  if (!f) {
    std::cerr << "bench_" << name_ << ": cannot write " << json_path_ << "\n";
    return 1;
  }
  f << os.str();
  std::cout << "json: wrote " << json_path_ << "\n";
  return f.good() ? 0 : 1;
}

}  // namespace mh::bench
