// Reproduces Table III: 3-D Coulomb (k=10, precision 1e-10) with custom
// CUDA kernels vs cuBLAS 4.1, 2-16 nodes, work distributed evenly.
#include <iostream>

#include "bench_common.hpp"

namespace {

using namespace mh;
using namespace mh::bench;

int run() {
  const cluster::Workload w = apps::table3_workload();

  print_header(
      "Table III — Coulomb d=3, k=10, precision 1e-10; GPU-only compute, "
      "even work distribution");
  std::cout << "workload: " << w.name << ", " << w.tasks
            << " compute tasks\n\n";

  const std::size_t nodes[] = {2, 4, 8, 16};
  const double paper_custom[] = {88.0, 56.0, 31.0, 19.0};
  const double paper_cublas[] = {247.0, 126.0, 71.0, 42.0};

  TextTable t({"nodes", "custom (s)", "cuBLAS (s)", "ratio", "paper custom",
               "paper cuBLAS", "paper ratio"});
  for (std::size_t i = 0; i < std::size(nodes); ++i) {
    auto cfg = apps::titan_config();
    cfg.nodes = nodes[i];
    cfg.mode = cluster::ComputeMode::kGpuOnly;
    const auto loads = cluster::even_map(w.tasks, nodes[i]);

    cfg.gpu.use_custom_kernel = true;
    const double custom = run_seconds(w, loads, cfg);
    cfg.gpu.use_custom_kernel = false;
    const double cublas = run_seconds(w, loads, cfg);

    t.add_row({std::to_string(nodes[i]), fmt(custom), fmt(cublas),
               custom > 0 ? fmt(cublas / custom, 2) : "-",
               fmt(paper_custom[i]), fmt(paper_cublas[i]),
               fmt(paper_cublas[i] / paper_custom[i], 2)});
  }
  t.print(std::cout);

  // The paper's boundary rows: below 2 nodes the per-node data exceeds the
  // GPU RAM; above 16 nodes batches carry too little work.
  {
    auto cfg = apps::titan_config();
    cfg.nodes = 1;
    cfg.mode = cluster::ComputeMode::kGpuOnly;
    std::string note;
    const double one = run_seconds(w, cluster::even_map(w.tasks, 1), cfg, &note);
    print_footnote(one < 0.0
                       ? "1 node: infeasible — " + note + " (paper: same)"
                       : "1 node unexpectedly feasible: model drift!");
  }
  return 0;
}

}  // namespace

int main() { return run(); }
