// Reproduces Table III: 3-D Coulomb (k=10, precision 1e-10) with custom
// CUDA kernels vs cuBLAS 4.1, 2-16 nodes, work distributed evenly.
#include <iostream>

#include "bench_common.hpp"
#include "bench_harness.hpp"

namespace {

using namespace mh;
using namespace mh::bench;

int run(int argc, char** argv) {
  Harness h("table3", argc, argv);
  const cluster::Workload w = apps::table3_workload();

  print_header(
      "Table III — Coulomb d=3, k=10, precision 1e-10; GPU-only compute, "
      "even work distribution");
  std::cout << "workload: " << w.name << ", " << w.tasks
            << " compute tasks\n\n";

  const std::size_t nodes[] = {2, 4, 8, 16};
  const double paper_custom[] = {88.0, 56.0, 31.0, 19.0};
  const double paper_cublas[] = {247.0, 126.0, 71.0, 42.0};

  TextTable t({"nodes", "custom (s)", "cuBLAS (s)", "ratio", "paper custom",
               "paper cuBLAS", "paper ratio"});
  for (std::size_t i = 0; i < std::size(nodes); ++i) {
    if (h.quick() && nodes[i] != 2 && nodes[i] != 16) continue;
    auto cfg = apps::titan_config();
    cfg.nodes = nodes[i];
    cfg.mode = cluster::ComputeMode::kGpuOnly;
    const auto loads = cluster::even_map(w.tasks, nodes[i]);

    cfg.gpu.use_custom_kernel = true;
    const RunSec custom = run_cluster(w, loads, cfg);
    cfg.gpu.use_custom_kernel = false;
    const RunSec cublas = run_cluster(w, loads, cfg);
    const bool both = custom.feasible && cublas.feasible;

    t.add_row({std::to_string(nodes[i]), fmt(custom), fmt(cublas),
               fmt(cublas.sec / custom.sec, 2, both), fmt(paper_custom[i]),
               fmt(paper_cublas[i]),
               fmt(paper_cublas[i] / paper_custom[i], 2)});
    const std::string prefix = "nodes_" + std::to_string(nodes[i]);
    h.scalar(prefix + "_custom_s", custom.sec, "s");
    h.scalar(prefix + "_cublas_s", cublas.sec, "s");
  }
  t.print(std::cout);

  // The paper's boundary rows: below 2 nodes the per-node data exceeds the
  // GPU RAM; above 16 nodes batches carry too little work.
  {
    auto cfg = apps::titan_config();
    cfg.nodes = 1;
    cfg.mode = cluster::ComputeMode::kGpuOnly;
    const RunSec one = run_cluster(w, cluster::even_map(w.tasks, 1), cfg);
    print_footnote(!one.feasible
                       ? "1 node: infeasible — " + one.note + " (paper: same)"
                       : "1 node unexpectedly feasible: model drift!");
    if (one.feasible) {
      h.scalar("nodes_1_custom_s", one.sec, "s");
    } else {
      h.scalar_infeasible("nodes_1_custom_s", "s");
    }
  }
  return h.finish();
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
