// Overhead gate for the live cluster health plane (src/obs/telemetry,
// src/obs/health): the plane must observe the run without changing it, and
// its wall-clock cost on the host must stay below 3%.
//
// Two halves, mirroring the tools/bench_compare.py gating policy:
//
//   deterministic (gated)  — a skewed 16-node steal run with the plane on
//                            vs off must produce the identical simulated
//                            makespan; the plane's tick / delta / byte /
//                            alert counts are themselves deterministic on
//                            the simulated clock and gate as scalars.
//   wall clock (ungated)   — the churn drill (real tensor tasks, so the
//                            data plane does real work) timed with the
//                            plane on vs off; the median overhead rides
//                            along as context and an in-bench MH_CHECK
//                            fails the run outright when it exceeds 3%.
//
// Set MH_DASHBOARD=<path> to write the live dashboard JSON of the gated
// run (render or validate with tools/mh_health).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <iostream>
#include <span>
#include <string>
#include <vector>

#include "apps/coulomb.hpp"
#include "bench_common.hpp"
#include "bench_harness.hpp"
#include "clustersim/churn.hpp"
#include "common/diagnostics.hpp"
#include "fault/fault.hpp"
#include "mra/function.hpp"
#include "obs/health.hpp"

namespace {

using namespace mh;
using namespace mh::bench;

struct Scenario {
  cluster::Workload workload;
  cluster::GroupMap placement;
  cluster::ClusterConfig config;
};

Scenario make_scenario(std::size_t nodes, std::size_t per_node,
                       std::uint64_t seed) {
  Scenario s{cluster::make_workload("telemetry", gpu::ApplyTaskShape{3, 10, 100},
                                    per_node * nodes, nodes * 8, 2.5, seed),
             {},
             apps::titan_config()};
  s.placement = cluster::locality_group_map(s.workload.group_sizes, nodes, 17);
  s.config.nodes = nodes;
  s.config.mode = cluster::ComputeMode::kCpuOnly;
  return s;
}

cluster::StealScheduleResult run_once(const Scenario& s,
                                      obs::HealthPlane* plane) {
  cluster::ClusterConfig cfg = s.config;
  cfg.health = plane;
  return cluster::run_cluster_apply_stealing(s.workload, s.placement, {}, cfg);
}

int run(int argc, char** argv) {
  Harness h("telemetry", argc, argv);
  print_header(
      "Live health plane — observation must not perturb, overhead < 3%");
  const std::uint64_t seed = h.seed_or(4242);
  const bool gate = seed == 4242;
  const std::size_t nodes = 16;
  const std::size_t per_node = h.quick() ? 600 : 1200;
  const Scenario s = make_scenario(nodes, per_node, seed);

  // --- deterministic half: on vs off on the simulated clock -------------
  const auto off = run_once(s, nullptr);
  MH_CHECK(off.result.feasible && !off.result.empty,
           "telemetry scenario must be feasible");

  obs::HealthPlane::Config pcfg;
  pcfg.ranks = nodes;
  pcfg.dashboard_path = obs::dashboard_path_from_env();
  obs::HealthPlane plane(pcfg);
  const auto on = run_once(s, &plane);
  MH_CHECK(on.result.feasible, "telemetry-on run must be feasible");
  MH_CHECK(on.result.makespan.sec() == off.result.makespan.sec(),
           "the health plane observed the run but changed its makespan");

  std::size_t straggler_fires = 0;
  for (const obs::AlertEvent& ev : plane.alert_history()) {
    if (ev.state == obs::AlertState::kFiring) ++straggler_fires;
  }
  const double bytes_per_tick =
      plane.ticks() > 0
          ? plane.bytes_ingested() / static_cast<double>(plane.ticks())
          : 0.0;

  TextTable t({"metric", "value"});
  t.add_row({"makespan off (s)", fmt(off.result.makespan.sec(), 3)});
  t.add_row({"makespan on (s)", fmt(on.result.makespan.sec(), 3)});
  t.add_row({"detector ticks", std::to_string(plane.ticks())});
  t.add_row({"deltas ingested", std::to_string(plane.deltas_ingested())});
  t.add_row({"telemetry bytes", fmt(plane.bytes_ingested() / 1e3, 1) + " KB"});
  t.add_row({"bytes / tick", fmt(bytes_per_tick, 1)});
  t.add_row({"alerts fired", std::to_string(straggler_fires)});

  h.scalar("steal16_makespan_s", on.result.makespan.sec(), "s",
           Direction::kLowerIsBetter, gate);
  h.scalar("telemetry_ticks", static_cast<double>(plane.ticks()), "",
           Direction::kLowerIsBetter, gate);
  h.scalar("telemetry_deltas", static_cast<double>(plane.deltas_ingested()),
           "", Direction::kLowerIsBetter, gate);
  // The wire-cost model is deterministic and gates: an instrument that
  // silently starts shipping every tick shows up here, and an intentional
  // addition refreshes the baseline like any other gated change.
  h.scalar("telemetry_kb_per_tick", bytes_per_tick / 1e3, "KB",
           Direction::kLowerIsBetter, gate);
  h.scalar("alerts_fired", static_cast<double>(straggler_fires), "",
           Direction::kLowerIsBetter, false);
  MH_CHECK(plane.snapshots_lost() == 0,
           "no transport faults in this scenario: nothing may be lost");

  // --- wall-clock half: the churn drill with real tensor tasks ----------
  // The steal scenario above is a pure simulation — its wall cost is
  // microseconds, so any telemetry at all would dwarf it. The churn drill
  // executes real Apply tensor math per task, which is what the plane
  // observes in production; overhead is measured against that. The drill
  // runs without churn events: pure observation cost, no recovery work.
  mra::FunctionParams fp;
  fp.ndim = 2;
  fp.k = 8;
  fp.thresh = h.quick() ? 1e-6 : 1e-7;
  fp.initial_level = 4;
  const mra::Function f = mra::Function::project(
      [](std::span<const double> x) {
        const double u = (x[0] - 0.45) / 0.1;
        const double v = (x[1] - 0.55) / 0.12;
        return std::exp(-u * u - v * v);
      },
      fp);
  const auto op = apps::make_smoothing_operator(2, 8, 0.08, 4, 1e-7);
  fault::FaultInjector no_faults(1);  // MH_FAULTS must not skew the timing
  cluster::ChurnConfig cc;
  cc.ranks = 8;
  cc.subtree_level = 2;
  cc.replication = 2;
  cc.seed = 13;
  cc.faults = &no_faults;
  cc.telemetry_every = 256;  // production cadence, not the test default

  const auto churn_off = cluster::run_churn_apply(op, f, cc);
  obs::HealthPlane::Config ccfg;
  ccfg.ranks = cc.ranks;
  obs::HealthPlane churn_plane(ccfg);
  cluster::ChurnConfig cc_on = cc;
  cc_on.health = &churn_plane;
  const auto churn_on = cluster::run_churn_apply(op, f, cc_on);
  MH_CHECK(churn_on.stats.makespan.sec() == churn_off.stats.makespan.sec(),
           "the health plane observed the churn drill but changed it");

  // Interleaved off/on pairs: two back-to-back measure() blocks absorb the
  // slow drift of a shared host (frequency scaling, cache state) straight
  // into the comparison, and at this cost scale that drift is the same
  // order as the gate. The per-pair ratio cancels it; the gate is the
  // median pairwise overhead.
  const int pairs = std::max(h.repeats(), 5);
  std::vector<double> off_s, on_s, pair_pct;
  for (int i = 0; i < pairs; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    cluster::run_churn_apply(op, f, cc);
    const auto t1 = std::chrono::steady_clock::now();
    {
      obs::HealthPlane::Config c;
      c.ranks = cc.ranks;
      obs::HealthPlane p(c);
      cluster::ChurnConfig on_cfg = cc;
      on_cfg.health = &p;
      cluster::run_churn_apply(op, f, on_cfg);
    }
    const auto t2 = std::chrono::steady_clock::now();
    const double off_sec = std::chrono::duration<double>(t1 - t0).count();
    const double on_sec = std::chrono::duration<double>(t2 - t1).count();
    off_s.push_back(off_sec);
    on_s.push_back(on_sec);
    pair_pct.push_back((on_sec / off_sec - 1.0) * 100.0);
  }
  const auto median = [](std::vector<double> v) {
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
  };
  const double overhead_pct = median(pair_pct);
  t.add_row({"churn tasks", std::to_string(churn_off.stats.tasks)});
  t.add_row({"churn ticks", std::to_string(churn_plane.ticks())});
  t.add_row({"wall off p50 (ms)", fmt(median(off_s) * 1e3, 2)});
  t.add_row({"wall on p50 (ms)", fmt(median(on_s) * 1e3, 2)});
  t.add_row({"wall overhead", fmt(overhead_pct, 2) + " %"});
  t.print(std::cout);
  h.scalar("wall_off_ms", median(off_s) * 1e3, "ms", Direction::kLowerIsBetter,
           false);
  h.scalar("wall_on_ms", median(on_s) * 1e3, "ms", Direction::kLowerIsBetter,
           false);
  h.scalar("wall_overhead_pct", overhead_pct, "%", Direction::kLowerIsBetter,
           false);
  MH_CHECK(overhead_pct < 3.0,
           "health plane wall overhead must stay below 3% (measured " +
               fmt(overhead_pct, 2) + "%)");

  print_footnote(
      "off/on makespans are asserted identical on both scenarios: the\n"
      "plane rides the simulated clock as an observer. wall overhead is\n"
      "the median pairwise on/off ratio of interleaved churn drills\n"
      "(real tensor tasks) on this host; the bench fails above 3%.");
  return h.finish();
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
