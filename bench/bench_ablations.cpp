// Ablation benches for the design choices DESIGN.md calls out:
//   1. asynchronous batching vs the naive per-task GPU port (§II);
//   2. pre-locked pinned staging vs pageable transfers (§II-A);
//   3. the write-once device cache for h blocks (§II-B);
//   4. rank reduction on the CPU vs on the GPU (§II-D);
//   5. GPU rank reduction under dynamic parallelism (§VI future work);
//   6. the hybrid split sweep around k* = n/(m+n) (§II-A);
//   7. leaf-level vs nonstandard-form Apply (real numerics).
#include <cmath>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <numbers>
#include <vector>

#include "bench_common.hpp"
#include "bench_harness.hpp"
#include "clustersim/cpu_model.hpp"
#include "common/rng.hpp"
#include "gpusim/device_cache.hpp"
#include "gpusim/gpu_executor.hpp"
#include "mra/function.hpp"
#include "ops/apply.hpp"
#include "ops/nonstandard.hpp"
#include "runtime/dispatch.hpp"

namespace {

using namespace mh;
using namespace mh::bench;

std::vector<gpu::GpuTaskDesc> shared_block_batch(std::size_t n,
                                                 gpu::ApplyTaskShape shape,
                                                 std::size_t blocks) {
  std::vector<gpu::GpuTaskDesc> batch(n);
  for (auto& d : batch) {
    d.shape = shape;
    for (std::size_t b = 0; b < blocks; ++b) d.h_block_ids.push_back(7000 + b);
  }
  return batch;
}

double batch_seconds(const std::vector<gpu::GpuTaskDesc>& batch,
                     gpu::BatchConfig cfg) {
  gpu::GpuDevice dev(gpu::DeviceSpec::tesla_m2090(), 8);
  gpu::DeviceCache cache(dev.spec().memory_bytes);
  return gpu::run_apply_batch(dev, &cache, batch, cfg, SimTime::zero())
      .elapsed()
      .sec();
}

void ablate_batching(Harness& h) {
  print_header("Ablation 1 — asynchronous batching vs naive per-task port");
  const auto batch = shared_block_batch(60, {3, 10, 100}, 300);
  TextTable t({"configuration", "batch time (ms)", "speedup"});
  gpu::BatchConfig batched;
  batched.streams = 5;
  const double b = batch_seconds(batch, batched);
  gpu::BatchConfig naive = batched;
  naive.batched = false;
  naive.pinned = false;
  naive.device_cache = false;
  const double n = batch_seconds(batch, naive);
  t.add_row({"batched + pinned + device cache", fmt(b * 1e3), "1.0"});
  t.add_row({"naive per-task port", fmt(n * 1e3), fmt(n / b, 2) + "x slower"});
  t.print(std::cout);
  h.scalar("batched_ms", b * 1e3, "ms");
  h.scalar("naive_ms", n * 1e3, "ms");
}

void ablate_pagelock(Harness& h) {
  print_header("Ablation 2 — pinned staging vs pageable transfers");
  const auto batch = shared_block_batch(60, {3, 20, 100}, 300);
  TextTable t({"transfer mode", "transfer-in time (ms)", "batch time (ms)"});
  for (const bool pinned : {true, false}) {
    gpu::BatchConfig cfg;
    cfg.pinned = pinned;
    gpu::GpuDevice dev(gpu::DeviceSpec::tesla_m2090(), 8);
    gpu::DeviceCache cache(dev.spec().memory_bytes);
    const auto r = gpu::run_apply_batch(dev, &cache, batch, cfg,
                                        SimTime::zero());
    t.add_row({pinned ? "page-locked (pre-locked pool)" : "pageable",
               fmt(r.transfer_in.ms(), 3), fmt(r.elapsed().ms())});
    h.scalar(pinned ? "pinned_transfer_in_ms" : "pageable_transfer_in_ms",
             r.transfer_in.ms(), "ms");
  }
  t.print(std::cout);
  print_footnote(
      "paper: page-locking at least doubles transfer speed; locking is done "
      "once on large buffers (0.5 ms lock / 2 ms unlock vs ~1 ms kernels).");
}

void ablate_device_cache(Harness& h) {
  print_header("Ablation 3 — write-once device cache for h blocks");
  TextTable t({"device cache", "misses", "hits", "transfer-in (ms)",
               "batch (ms)"});
  const auto batch = shared_block_batch(60, {3, 10, 100}, 300);
  for (const bool enabled : {true, false}) {
    gpu::BatchConfig cfg;
    cfg.device_cache = enabled;
    gpu::GpuDevice dev(gpu::DeviceSpec::tesla_m2090(), 8);
    gpu::DeviceCache cache(dev.spec().memory_bytes);
    const auto r = gpu::run_apply_batch(dev, enabled ? &cache : nullptr,
                                        batch, cfg, SimTime::zero());
    t.add_row({enabled ? "on" : "off", std::to_string(r.cache_misses),
               std::to_string(r.cache_hits), fmt(r.transfer_in.ms(), 2),
               fmt(r.elapsed().ms())});
    h.scalar(enabled ? "cache_on_batch_ms" : "cache_off_batch_ms",
             r.elapsed().ms(), "ms");
  }
  t.print(std::cout);
}

void ablate_rank_reduction(Harness& h) {
  print_header("Ablation 4 — rank reduction: CPU vs GPU (paper §II-D)");
  const gpu::ApplyTaskShape shape{3, 30, 100};
  const cluster::CpuSpec cpu = cluster::CpuSpec::titan_interlagos();
  const double rank_fraction = 0.33;  // kred/k for the k=30 operator

  TextTable t({"configuration", "time per 60-task batch (ms)", "gain"});
  const double cpu_full =
      cluster::cpu_batch_time(cpu, shape, 60, 16).sec() * 1e3;
  const double cpu_rr =
      cluster::cpu_batch_time(cpu, shape, 60, 16, rank_fraction).sec() * 1e3;
  t.add_row({"CPU, full rank", fmt(cpu_full), "1.0"});
  t.add_row({"CPU, rank reduced", fmt(cpu_rr),
             fmt(cpu_full / cpu_rr, 2) + "x faster"});
  h.scalar("cpu_full_rank_ms", cpu_full, "ms");
  h.scalar("cpu_rank_reduced_ms", cpu_rr, "ms");

  // GPU: SMs are reserved at launch; shrinking the GEMMs does not release
  // them, so the kernel duration is bounded by the reserved resources and
  // the (unchanged) barrier/step count. We model this faithfully: the GPU
  // kernel time does not scale with the rank fraction at all.
  const auto batch = shared_block_batch(60, shape, 300);
  gpu::BatchConfig cfg;
  const double gpu_full = batch_seconds(batch, cfg) * 1e3;
  t.add_row({"GPU, full rank", fmt(gpu_full), "1.0"});
  t.add_row({"GPU, rank reduced", fmt(gpu_full),
             "1.0x (SMs reserved at launch: no gain)"});
  t.print(std::cout);
  h.scalar("gpu_full_rank_ms", gpu_full, "ms");
  print_footnote(
      "paper: rank reduction cuts CPU work up to ~2.5-3x but 'did not have "
      "a noticeable effect' on the GPU.");
}

void ablate_dynamic_parallelism(Harness& h) {
  print_header(
      "Ablation 5 — GPU rank reduction via dynamic parallelism (the "
      "paper's §VI future work, projected)");
  const auto batch = shared_block_batch(60, {3, 30, 100}, 300);
  TextTable t({"GPU configuration", "batch time (ms)", "vs baseline"});
  gpu::BatchConfig base;
  base.streams = 6;
  const double baseline = batch_seconds(batch, base) * 1e3;
  t.add_row({"full rank (Fermi)", fmt(baseline), "1.00"});

  gpu::BatchConfig fermi_rr = base;
  fermi_rr.gpu_rank_reduce = true;
  fermi_rr.gpu_rank_fraction = 0.33;
  const double f = batch_seconds(batch, fermi_rr) * 1e3;
  t.add_row({"rank reduced, no dyn. parallelism (Fermi)", fmt(f),
             fmt(baseline / f, 2) + "x"});

  gpu::BatchConfig kepler = fermi_rr;
  kepler.dynamic_parallelism = true;
  const double kk = batch_seconds(batch, kepler) * 1e3;
  t.add_row({"rank reduced + dyn. parallelism (Kepler)", fmt(kk),
             fmt(baseline / kk, 2) + "x"});
  t.print(std::cout);
  h.scalar("fermi_full_rank_ms", baseline, "ms");
  h.scalar("kepler_dyn_parallelism_ms", kk, "ms");
  print_footnote(
      "paper §VI: 'The dynamic parallelism featured in the future CUDA 5 "
      "release could help alleviate some of the rank reduction issues on "
      "GPUs.' — this is that projection on the simulated device.");
}

void ablate_split(Harness& h) {
  print_header(
      "Ablation 6 — hybrid split sweep: minimum at k* = n/(m+n)");
  const double m = 24.3, n = 24.7;  // Table I's 10-thread / 5-stream rates
  const double kstar = rt::optimal_cpu_fraction(m, n);
  TextTable t({"CPU fraction k", "max(m k, n (1-k)) (s)"});
  for (double k = 0.0; k <= 1.0001; k += h.quick() ? 0.25 : 0.1) {
    t.add_row({fmt(k, 2), fmt(rt::overlap_time(m, n, k), 1)});
  }
  t.add_row({"k* = " + fmt(kstar, 3), fmt(rt::optimal_overlap_time(m, n), 1)});
  t.print(std::cout);
  h.scalar("kstar", kstar, "fraction", Direction::kHigherIsBetter,
           /*gate=*/true);
  h.scalar("optimal_overlap_s", rt::optimal_overlap_time(m, n), "s");
}

void ablate_nonstandard_form(Harness& h) {
  print_header(
      "Ablation 7 — leaf-level vs nonstandard-form Apply (real numerics, "
      "adaptive 1-D tree, broad kernel)");
  // A narrow feature forces deep adaptive refinement; a broad kernel makes
  // the cross-level coupling that the leaf-level shortcut misses.
  const double c = 0.3, wf = 0.02, wk = 0.15;
  mra::FunctionParams fp;
  fp.ndim = 1;
  fp.k = 6;
  fp.thresh = 1e-7;
  fp.initial_level = 2;
  auto f_fn = [&](std::span<const double> x) {
    const double u = (x[0] - c) / wf;
    return std::exp(-u * u);
  };
  mra::Function f = mra::Function::project(f_fn, fp);

  ops::SeparatedConvolution::Params op_p;
  op_p.ndim = 1;
  op_p.k = 6;
  op_p.thresh = 1e-10;
  op_p.max_disp = 10;
  ops::SeparatedConvolution op(op_p, ops::single_gaussian(wk));

  ops::ApplyStats leaf_stats, ns_stats;
  mra::Function leaf = ops::apply(op, f, {}, &leaf_stats);
  mra::Function nsr = ops::apply_nonstandard(op, f, &ns_stats);

  const double weff2 = wk * wk + wf * wf;
  const double amp =
      std::sqrt(std::numbers::pi) * wk * wf / std::sqrt(weff2);
  Rng rng(h.seed_or(91));
  double leaf_err = 0.0, ns_err = 0.0;
  for (int i = 0; i < 60; ++i) {
    const double x[1] = {rng.uniform(0.05, 0.95)};
    const double expect = amp * std::exp(-(x[0] - c) * (x[0] - c) / weff2);
    leaf_err = std::max(leaf_err, std::abs(leaf.eval(x) - expect));
    ns_err = std::max(ns_err, std::abs(nsr.eval(x) - expect));
  }

  auto sci = [](double v) {
    std::ostringstream os;
    os << std::scientific << std::setprecision(2) << v;
    return os.str();
  };
  TextTable t({"apply form", "max error / peak", "tasks", "small GEMMs"});
  t.add_row({"leaf-level (Algorithms 1-2)", sci(leaf_err / amp),
             std::to_string(leaf_stats.tasks),
             std::to_string(leaf_stats.gemms)});
  t.add_row({"nonstandard form (2k blocks)", sci(ns_err / amp),
             std::to_string(ns_stats.tasks), std::to_string(ns_stats.gemms)});
  t.print(std::cout);
  h.scalar("leaf_rel_err", leaf_err / amp, "fraction");
  h.scalar("ns_rel_err", ns_err / amp, "fraction");
  h.scalar("ns_gemms", static_cast<double>(ns_stats.gemms), "count");
  print_footnote(
      "the leaf-level shortcut needs a displacement band as wide as the\n"
      "kernel reach measured in *leaf-level* boxes (hundreds here), while\n"
      "the NS form covers the same reach with O(1) displacements per level\n"
      "of 2k x 2k blocks — the paper's 'fixed dimension 10 to 28' matrices.");
}

}  // namespace

int main(int argc, char** argv) {
  Harness h("ablations", argc, argv);
  ablate_batching(h);
  ablate_pagelock(h);
  ablate_device_cache(h);
  ablate_rank_reduction(h);
  ablate_dynamic_parallelism(h);
  ablate_split(h);
  ablate_nonstandard_form(h);
  return h.finish();
}
