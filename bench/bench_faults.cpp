// Resilience bench: what fault injection costs the hybrid runtime.
//
// Gated (deterministic) sections exercise the src/fault machinery with
// exact-trigger rules, so the recorded scalars are event counts that must
// reproduce bit-for-bit on any machine:
//   1. the injector's seeded probability stream (injected count over a
//      fixed number of events);
//   2. a cadence drill (every 2nd GPU batch fails, no retries): failed
//      batches and the items re-routed to the CPU fallback;
//   3. a breaker drill (3 consecutive failures then recovery): open /
//      close transition counts.
// The wall-clock section measures end-to-end engine throughput at
// increasing GPU fault rates — machine-dependent, recorded ungated.
#include <atomic>
#include <cstddef>
#include <iostream>
#include <numeric>
#include <vector>

#include "bench_harness.hpp"
#include "common/table.hpp"
#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "runtime/batching.hpp"

namespace {

using namespace mh;
using namespace mh::bench;
using namespace std::chrono_literals;

using Engine = rt::BatchingEngine<int, double>;

void print_header(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n";
}

/// A drill engine: fixed 50/50 split, one batch per 64-item wave (size
/// trigger only — the flush window is far longer than any drill).
Engine::Config drill_config(fault::FaultInjector* fi,
                            obs::MetricsRegistry* reg) {
  Engine::Config cfg;
  cfg.cpu_threads = 2;
  cfg.cpu_fraction = 0.5;
  cfg.flush_interval = 10s;
  cfg.max_batch = 64;
  cfg.metrics = reg;
  cfg.faults = fi;
  cfg.retry_backoff = 0ms;
  cfg.retry_backoff_max = 1ms;
  return cfg;
}

/// Register the drill kind: trivial numerics, the bench only counts events.
rt::KindId drill_kind(Engine& engine, std::atomic<long>* sink) {
  return engine.register_kind(
      {[](const int& x) { return static_cast<double>(x); },
       [](std::span<const int> xs) {
         std::vector<double> out;
         out.reserve(xs.size());
         for (int x : xs) out.push_back(static_cast<double>(x));
         return out;
       },
       [sink](double&& v) {
         sink->fetch_add(static_cast<long>(v), std::memory_order_relaxed);
       },
       1});
}

void bench_injector_stream(Harness& h) {
  print_header("Injector determinism — seeded probability stream");
  fault::FaultInjector fi(h.seed_or(42));
  fault::SiteRule rule;
  rule.probability = 0.3;
  fi.set_rule(fault::FaultSite::kGpuKernel, rule);
  for (int i = 0; i < 1000; ++i) fi.should_fail(fault::FaultSite::kGpuKernel);
  const auto stats = fi.stats(fault::FaultSite::kGpuKernel);
  TextTable t({"events", "p", "injected"});
  t.add_row({"1000", "0.30", TextTable::num(stats.injected, 0)});
  t.print(std::cout);
  h.scalar("injector_p30_injected_per_1000", static_cast<double>(stats.injected),
           "faults", Direction::kLowerIsBetter, /*gate=*/true);
}

void bench_fallback_drill(Harness& h) {
  print_header("Cadence drill — every 2nd GPU batch fails, CPU absorbs");
  constexpr std::size_t kWaves = 16;
  constexpr std::size_t kWave = 64;
  fault::FaultInjector fi(h.seed_or(42));
  fault::SiteRule rule;
  rule.every = 2;
  fi.set_rule(fault::FaultSite::kGpuKernel, rule);
  obs::MetricsRegistry reg;
  auto cfg = drill_config(&fi, &reg);
  cfg.gpu_max_retries = 0;
  cfg.breaker_threshold = 1000;  // alternating failures must not open it
  std::atomic<long> sink{0};
  Engine engine(cfg);
  const rt::KindId kind = drill_kind(engine, &sink);
  for (std::size_t w = 0; w < kWaves; ++w) {
    for (std::size_t i = 0; i < kWave; ++i) {
      engine.submit(kind, static_cast<int>(i));
    }
    engine.wait();  // one size-triggered batch per wave
  }
  const auto stats = engine.stats();
  TextTable t({"waves", "items", "GPU failures", "fallback items",
               "breaker opens"});
  t.add_row({TextTable::num(kWaves, 0), TextTable::num(stats.completed, 0),
             TextTable::num(stats.gpu_failures, 0),
             TextTable::num(stats.gpu_fallback_items, 0),
             TextTable::num(stats.breaker_opens, 0)});
  t.print(std::cout);
  h.scalar("cadence_gpu_failures", static_cast<double>(stats.gpu_failures),
           "batches", Direction::kLowerIsBetter, /*gate=*/true);
  h.scalar("cadence_fallback_items",
           static_cast<double>(stats.gpu_fallback_items), "items",
           Direction::kLowerIsBetter, /*gate=*/true);
  h.scalar("cadence_completed", static_cast<double>(stats.completed), "items",
           Direction::kHigherIsBetter, /*gate=*/true);
}

void bench_breaker_drill(Harness& h) {
  print_header("Breaker drill — 3 consecutive failures, then recovery");
  fault::FaultInjector fi(h.seed_or(42));
  fault::SiteRule rule;
  rule.at = {1, 2, 3};
  fi.set_rule(fault::FaultSite::kGpuKernel, rule);
  obs::MetricsRegistry reg;
  auto cfg = drill_config(&fi, &reg);
  cfg.gpu_max_retries = 0;
  cfg.breaker_threshold = 3;
  cfg.breaker_cooldown = 0ms;  // probe at the next staged batch
  std::atomic<long> sink{0};
  Engine engine(cfg);
  const rt::KindId kind = drill_kind(engine, &sink);
  // Waves 1-3 fail (opening the breaker at wave 3); wave 4 stages the
  // half-open probe, which succeeds and closes it; wave 5 runs restored.
  for (std::size_t w = 0; w < 5; ++w) {
    for (std::size_t i = 0; i < 64; ++i) {
      engine.submit(kind, static_cast<int>(i));
    }
    engine.wait();
  }
  const auto stats = engine.stats();
  TextTable t({"GPU failures", "breaker opens", "breaker closes",
               "fallback items"});
  t.add_row({TextTable::num(stats.gpu_failures, 0),
             TextTable::num(stats.breaker_opens, 0),
             TextTable::num(stats.breaker_closes, 0),
             TextTable::num(stats.gpu_fallback_items, 0)});
  t.print(std::cout);
  h.scalar("breaker_gpu_failures", static_cast<double>(stats.gpu_failures),
           "batches", Direction::kLowerIsBetter, /*gate=*/true);
  h.scalar("breaker_opens", static_cast<double>(stats.breaker_opens),
           "transitions", Direction::kLowerIsBetter, /*gate=*/true);
  h.scalar("breaker_closes", static_cast<double>(stats.breaker_closes),
           "transitions", Direction::kHigherIsBetter, /*gate=*/true);
}

/// Wall clock: push `items` through a hybrid engine at GPU fault rate `p`
/// (bounded retries, breaker enabled) and return engine stats.
Engine::Stats throughput_run(std::uint64_t seed, double p, std::size_t items) {
  fault::FaultInjector fi(seed);
  if (p > 0.0) {
    fault::SiteRule rule;
    rule.probability = p;
    fi.set_rule(fault::FaultSite::kGpuKernel, rule);
  }
  obs::MetricsRegistry reg;
  Engine::Config cfg;
  cfg.cpu_threads = 4;
  cfg.cpu_fraction = -1.0;  // auto-tune, degraded by the breaker under faults
  cfg.flush_interval = 1ms;
  cfg.max_batch = 64;
  cfg.metrics = &reg;
  cfg.faults = &fi;
  cfg.gpu_max_retries = 1;
  cfg.retry_backoff = 0ms;
  cfg.breaker_threshold = 3;
  cfg.breaker_cooldown = 2ms;
  std::atomic<long> sink{0};
  Engine engine(cfg);
  // A little real work per item so the split has something to balance.
  std::vector<double> work(512);
  std::iota(work.begin(), work.end(), 0.0);
  const rt::KindId busy = engine.register_kind(
      {[&work](const int& x) {
         double acc = 0.0;
         for (double v : work) acc += v * x;
         return acc;
       },
       [&work](std::span<const int> xs) {
         std::vector<double> out;
         out.reserve(xs.size());
         for (int x : xs) {
           double acc = 0.0;
           for (double v : work) acc += v * x;
           out.push_back(acc);
         }
         return out;
       },
       [&sink](double&& v) {
         sink.fetch_add(static_cast<long>(v), std::memory_order_relaxed);
       },
       2});
  // Waves with a wait between them: the dispatcher would otherwise coalesce
  // the whole submission into one giant batch (max_batch is a dispatch
  // trigger, not a size cap) and the GPU side would see a single fault draw.
  for (std::size_t i = 0; i < items; ++i) {
    engine.submit(busy, static_cast<int>(i % 97));
    if ((i + 1) % 64 == 0) engine.wait();
  }
  engine.wait();
  return engine.stats();
}

void bench_throughput(Harness& h) {
  print_header("Wall clock — engine throughput vs GPU fault rate (ungated)");
  const std::size_t items = h.quick() ? 4096 : 16384;
  const std::vector<double> rates =
      h.quick() ? std::vector<double>{0.0, 0.3}
                : std::vector<double>{0.0, 0.1, 0.3};
  TextTable t({"fault rate", "median (ms)", "GPU failures", "fallback items",
               "breaker opens"});
  for (double p : rates) {
    Engine::Stats last{};
    const auto summary = h.measure(
        "throughput_p" + TextTable::num(p * 100, 0),
        [&] { last = throughput_run(h.seed_or(42), p, items); });
    t.add_row({TextTable::num(p, 2), TextTable::num(summary.p50 * 1e3, 2),
               TextTable::num(last.gpu_failures, 0),
               TextTable::num(last.gpu_fallback_items, 0),
               TextTable::num(last.breaker_opens, 0)});
  }
  t.print(std::cout);
  std::cout << "(wall-clock: recorded ungated; the deterministic drills "
               "above carry the gate)\n";
}

}  // namespace

int main(int argc, char** argv) {
  Harness h("faults", argc, argv);
  bench_injector_stream(h);
  bench_fallback_drill(h);
  bench_breaker_drill(h);
  bench_throughput(h);
  return h.finish();
}
