// Reproduces Table VI: the Apply part of the 4-D Time-Dependent Schrodinger
// Equation (k=14, threshold 1e-14, 542,113 tasks) on 100-500 Titan nodes.
// 4-D tensors spill the custom kernel's shared memory, so the GPU path uses
// cuBLAS (as the paper did); rank reduction on the CPU.
#include <iostream>

#include "bench_common.hpp"
#include "bench_harness.hpp"
#include "runtime/dispatch.hpp"

namespace {

using namespace mh;
using namespace mh::bench;

int run(int argc, char** argv) {
  Harness h("table6", argc, argv);
  const cluster::Workload w = apps::table6_workload();

  print_header(
      "Table VI — 4-D TDSE, k=14, precision 1e-14; 100-500 nodes; cuBLAS "
      "kernels; rank reduction on the CPU");
  std::cout << "workload: " << w.name << ", " << w.tasks
            << " compute tasks (count from the paper)\n\n";

  const std::size_t nodes[] = {100, 200, 300, 400, 500};
  const double paper_cpu[] = {985, 759, 739, 718, 648};
  const double paper_gpu[] = {873, 580, 533, 448, 339};
  const double paper_hybrid[] = {664, 524, 308, 299, 277};
  const double paper_optimal[] = {463, 329, 310, 276, 223};
  const double paper_speedup[] = {1.4, 1.4, 2.3, 2.4, 2.3};

  TextTable t({"nodes", "CPU", "GPU", "hybrid", "optimal", "speedup",
               "paper: CPU", "GPU", "hybrid", "optimal", "speedup"});
  for (std::size_t i = 0; i < std::size(nodes); ++i) {
    if (h.quick() && nodes[i] != 100 && nodes[i] != 500) continue;
    const auto loads = cluster::locality_map(w.group_sizes, nodes[i], 106);

    auto cpu_cfg = apps::titan_config();
    cpu_cfg.nodes = nodes[i];
    cpu_cfg.mode = cluster::ComputeMode::kCpuOnly;
    cpu_cfg.rank_reduce = true;
    cpu_cfg.rank_fraction = apps::table6_rank_fraction();
    const RunSec cpu = run_cluster(w, loads, cpu_cfg);

    auto gpu_cfg = apps::titan_config();
    gpu_cfg.nodes = nodes[i];
    gpu_cfg.mode = cluster::ComputeMode::kGpuOnly;
    gpu_cfg.gpu.use_custom_kernel = false;  // 4-D: cuBLAS regime
    const RunSec gpu = run_cluster(w, loads, gpu_cfg);

    auto hyb_cfg = gpu_cfg;
    hyb_cfg.mode = cluster::ComputeMode::kHybrid;
    hyb_cfg.cpu_compute_threads = 14;  // paper: 9-14 threads
    hyb_cfg.rank_reduce = true;
    hyb_cfg.rank_fraction = apps::table6_rank_fraction();
    const RunSec hybrid = run_cluster(w, loads, hyb_cfg);

    const bool overlap_known = cpu.feasible && gpu.feasible;
    const double optimal =
        overlap_known ? rt::optimal_overlap_time(cpu.sec, gpu.sec) : 0.0;
    const bool speedup_known = cpu.feasible && hybrid.feasible;

    t.add_row({std::to_string(nodes[i]), fmt(cpu, 0), fmt(gpu, 0),
               fmt(hybrid, 0), fmt(optimal, 0, overlap_known),
               fmt(cpu.sec / hybrid.sec, 1, speedup_known),
               fmt(paper_cpu[i], 0), fmt(paper_gpu[i], 0),
               fmt(paper_hybrid[i], 0), fmt(paper_optimal[i], 0),
               fmt(paper_speedup[i], 1)});
    const std::string prefix = "nodes_" + std::to_string(nodes[i]);
    h.scalar(prefix + "_cpu_s", cpu.sec, "s");
    h.scalar(prefix + "_gpu_s", gpu.sec, "s");
    h.scalar(prefix + "_hybrid_s", hybrid.sec, "s");
  }
  t.print(std::cout);
  return h.finish();
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
