// Serving bench: latency vs offered load, to saturation and past it.
//
// The serving front end (src/serve) runs the standard 4-tenant scenario at
// a sweep of offered loads (fractions of the closed-form full-batch
// capacity), once per flush policy:
//   deadline — flush at the last responsible moment for the earliest
//              enqueued deadline (the serving discipline);
//   timer    — classic size/window cadence (the batch-job default).
// Everything is discrete-event simulated time, so the latency quantiles
// (p50/p99/p999 through the log-bucketed histogram), the goodput, and the
// shed fractions are bit-reproducible and gate in CI via
// tools/bench_compare.py. The table this bench prints is the
// latency-vs-load curve CI posts to the job summary.
//
// Gated headline scalars (default seed):
//   - p50/p99/p999 at 0.8 load under the deadline policy;
//   - the timer policy's p99 at the same load, and the tail gain
//     (timer p99 / deadline p99) — the deadline-beats-timer claim;
//   - the saturation knee (first load whose in-SLO goodput falls below
//     90% of offered) and the overload point's goodput + shed%.
//
// MH_SERVE_* environment overrides (see README "Serving") apply to every
// sweep point; MH_DASHBOARD / MH_TELEMETRY attach a health plane with the
// SLO-burn rule to the 0.8-load deadline run and export its dashboard.
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <iostream>
#include <limits>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "bench_harness.hpp"
#include "common/diagnostics.hpp"
#include "common/table.hpp"
#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "serve/serve.hpp"

namespace {

using namespace mh;
using namespace mh::bench;

void print_header(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n";
}

std::string load_tag(double load) {
  return "load" + TextTable::num(std::lround(load * 100.0), 0);
}

double offered_rps(const serve::ServeConfig& cfg) {
  double total = 0.0;
  for (const serve::TenantSpec& spec : cfg.tenants) total += spec.arrival_rps;
  return total;
}

std::size_t total_of(const serve::ServeResult& r,
                     std::size_t serve::TenantStats::*field) {
  std::size_t total = 0;
  for (const serve::TenantStats& t : r.tenants) total += t.*field;
  return total;
}

double shed_pct(const serve::ServeResult& r) {
  const std::size_t offered = total_of(r, &serve::TenantStats::offered);
  const std::size_t shed = total_of(r, &serve::TenantStats::shed_rate_limit) +
                           total_of(r, &serve::TenantStats::shed_queue_full);
  return offered > 0 ? 100.0 * static_cast<double>(shed) /
                           static_cast<double>(offered)
                     : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  Harness h("serve", argc, argv);
  const std::uint64_t seed = h.seed_or(0x5eed);
  const bool gate = seed == 0x5eed;  // baselines pin the default stream
  const double duration_s = h.quick() ? 0.4 : 2.0;
  const std::vector<double> loads =
      h.quick() ? std::vector<double>{0.4, 0.8, 1.2}
                : std::vector<double>{0.2, 0.4, 0.6, 0.8, 0.9,
                                      1.0, 1.1, 1.2, 1.4};

  // MH_DASHBOARD / MH_TELEMETRY arm a health plane (SLO-burn rule) on the
  // 0.8-load deadline run; its dashboard passes `mh_health --check` in CI.
  const std::string dashboard = obs::dashboard_path_from_env();
  std::optional<obs::HealthPlane> plane;
  if (!dashboard.empty() || obs::telemetry_enabled_from_env()) {
    obs::HealthPlane::Config pc;
    pc.ranks = 4;  // tenant lanes
    pc.rules = serve::serve_rules();
    pc.dashboard_path = dashboard;
    pc.registry = &obs::MetricsRegistry::global();
    plane.emplace(std::move(pc));
  }

  print_header("Latency vs offered load — deadline vs timer flush");
  TextTable curve({"load", "offered/s", "policy", "p50 ms", "p99 ms",
                   "p999 ms", "goodput/s", "shed %", "batches", "avg n"});
  std::optional<serve::ServeResult> deadline080;
  std::optional<serve::ServeResult> timer080;
  std::optional<serve::ServeResult> deadline_overload;
  std::vector<std::pair<double, double>> efficiency;  // load -> goodput/offered
  for (double load : loads) {
    for (const serve::FlushPolicy policy :
         {serve::FlushPolicy::kDeadline, serve::FlushPolicy::kTimer}) {
      serve::ServeConfig cfg = serve::default_serve_config(load);
      cfg.duration = SimTime::seconds(duration_s);
      cfg.seed = seed;
      serve::apply_env_overrides(cfg);
      cfg.policy = policy;  // the sweep's independent variable
      const bool flagship = policy == serve::FlushPolicy::kDeadline &&
                            std::abs(load - 0.8) < 1e-9;
      obs::MetricsRegistry local;
      cfg.metrics = flagship ? &obs::MetricsRegistry::global() : &local;
      cfg.health = flagship && plane ? &*plane : nullptr;
      const serve::ServeResult res = serve::run_serve(cfg);
      const std::size_t admitted =
          total_of(res, &serve::TenantStats::admitted);
      const bool deadline = policy == serve::FlushPolicy::kDeadline;
      curve.add_row(
          {TextTable::num(load, 2), TextTable::num(offered_rps(cfg), 0),
           deadline ? "deadline" : "timer",
           TextTable::num(res.latency.p50, 2),
           TextTable::num(res.latency.p99, 2),
           TextTable::num(res.latency.p999, 2),
           TextTable::num(res.stats.goodput_rps, 0),
           TextTable::num(shed_pct(res), 1),
           TextTable::num(res.stats.batches, 0),
           TextTable::num(res.stats.batches > 0
                              ? static_cast<double>(admitted) /
                                    static_cast<double>(res.stats.batches)
                              : 0.0,
                          1)});
      if (deadline) {
        efficiency.emplace_back(
            load, offered_rps(cfg) > 0.0
                      ? res.stats.goodput_rps / offered_rps(cfg)
                      : 0.0);
        if (flagship) deadline080 = res;
        if (load == loads.back()) deadline_overload = res;
      } else if (std::abs(load - 0.8) < 1e-9) {
        timer080 = res;
      }
    }
  }
  curve.print(std::cout);

  // The saturation knee: the first load whose in-SLO goodput drops below
  // 90% of offered (queueing delay and shedding eat the curve).
  double knee = loads.back();
  for (const auto& [load, eff] : efficiency) {
    if (eff < 0.9) {
      knee = load;
      break;
    }
  }
  std::cout << "saturation knee: " << TextTable::num(knee, 2)
            << " x capacity (goodput < 90% of offered)\n";

  MH_CHECK(deadline080 && timer080 && deadline_overload,
           "sweep must cover 0.8 load and an overload point");

  print_header("Per-tenant breakdown at 0.8 load (deadline policy)");
  TextTable tenants({"tenant", "offered", "admitted", "shed %", "p50 ms",
                     "p99 ms", "p999 ms", "SLO miss %"});
  for (const serve::TenantStats& t : deadline080->tenants) {
    const std::size_t shed = t.shed_rate_limit + t.shed_queue_full;
    tenants.add_row(
        {t.name, TextTable::num(t.offered, 0), TextTable::num(t.admitted, 0),
         TextTable::num(t.offered > 0 ? 100.0 * static_cast<double>(shed) /
                                            static_cast<double>(t.offered)
                                      : 0.0,
                        1),
         TextTable::num(t.latency.p50, 2), TextTable::num(t.latency.p99, 2),
         TextTable::num(t.latency.p999, 2),
         TextTable::num(t.completed > 0
                            ? 100.0 * static_cast<double>(t.slo_misses) /
                                  static_cast<double>(t.completed)
                            : 0.0,
                        1)});
  }
  tenants.print(std::cout);

  // --- gated headline scalars -------------------------------------------
  const serve::ServeResult& dl = *deadline080;
  const serve::ServeResult& tm = *timer080;
  h.scalar("p50_ms_" + load_tag(0.8), dl.latency.p50, "ms",
           Direction::kLowerIsBetter, gate);
  h.scalar("p99_ms_" + load_tag(0.8), dl.latency.p99, "ms",
           Direction::kLowerIsBetter, gate);
  h.scalar("p999_ms_" + load_tag(0.8), dl.latency.p999, "ms",
           Direction::kLowerIsBetter, gate);
  h.scalar("timer_p99_ms_" + load_tag(0.8), tm.latency.p99, "ms",
           Direction::kLowerIsBetter, gate);
  // The headline claim: the deadline policy beats the timer policy on tail
  // latency at 80% load (ratio > 1).
  const double tail_gain =
      dl.latency.p99 > 0.0 ? tm.latency.p99 / dl.latency.p99 : 0.0;
  h.scalar("tail_gain_" + load_tag(0.8), tail_gain, "x",
           Direction::kHigherIsBetter, gate);
  h.scalar("knee_load", knee, "x capacity", Direction::kHigherIsBetter, gate);
  h.scalar("goodput_rps_" + load_tag(loads.back()),
           deadline_overload->stats.goodput_rps, "req/s",
           Direction::kHigherIsBetter, gate);
  h.scalar("shed_pct_" + load_tag(loads.back()), shed_pct(*deadline_overload),
           "%", Direction::kLowerIsBetter, gate);
  for (const serve::TenantStats& t : dl.tenants) {
    h.scalar("p99_ms_" + load_tag(0.8) + "_" + t.name, t.latency.p99, "ms",
             Direction::kLowerIsBetter, gate);
  }
  // Fairness: the hog-resistant scheduler keeps per-tenant tails close —
  // the spread is max/min per-tenant p99 at 0.8 load.
  double p99_min = std::numeric_limits<double>::infinity();
  double p99_max = 0.0;
  for (const serve::TenantStats& t : dl.tenants) {
    p99_min = std::min(p99_min, t.latency.p99);
    p99_max = std::max(p99_max, t.latency.p99);
  }
  h.scalar("fair_p99_spread_" + load_tag(0.8),
           p99_min > 0.0 ? p99_max / p99_min : 0.0, "x",
           Direction::kLowerIsBetter, gate);

  std::cout << "\n(simulated-time sweep: every scalar above is "
               "deterministic and gates at the default seed)\n";
  return h.finish();
}
