// Where the time goes: phase breakdown of the slowest node for the paper's
// three execution modes on the Table I workload. This is the quantitative
// version of the paper's §III-A discussion ("the CPU, besides computation,
// also has to run all preprocess and postprocess tasks... the dispatcher
// thread has to rearrange and batch data for the GPU").
#include <iostream>

#include "bench_common.hpp"

namespace {

using namespace mh;
using namespace mh::bench;

void add_mode(TextTable& t, const char* label, const cluster::Workload& w,
              cluster::ClusterConfig cfg) {
  const auto loads = cluster::even_map(w.tasks, cfg.nodes);
  const auto result = cluster::run_cluster_apply(w, loads, cfg);
  if (!result.feasible) {
    t.add_row({label, "-", "-", "-", "-", "-", "-", "-"});
    return;
  }
  const auto& b = result.slowest_breakdown;
  t.add_row({label, fmt(result.makespan.sec()), fmt(b.cpu_compute.sec()),
             fmt(b.host_data.sec()), fmt(b.dispatch.sec()),
             fmt(b.transfers.sec(), 2), fmt(b.gpu_kernels.sec()),
             fmt(b.comm.sec(), 2)});
}

int run() {
  const cluster::Workload w = apps::table1_workload();
  print_header(
      "Phase breakdown — Coulomb d=3, k=10 (Table I workload), 1 node; "
      "all columns in seconds of slowest-node wall time");

  TextTable t({"mode", "makespan", "CPU compute", "pre/post", "dispatch",
               "PCIe", "GPU kernels", "comm"});
  auto base = apps::titan_config();
  base.nodes = 1;

  auto cpu = base;
  cpu.mode = cluster::ComputeMode::kCpuOnly;
  add_mode(t, "CPU-only (16 thr)", w, cpu);

  auto gpu = base;
  gpu.mode = cluster::ComputeMode::kGpuOnly;
  gpu.node.gpu_streams = 5;
  add_mode(t, "GPU-only (5 streams)", w, gpu);

  auto hyb = base;
  hyb.mode = cluster::ComputeMode::kHybrid;
  hyb.cpu_compute_threads = 10;
  hyb.node.gpu_streams = 5;
  add_mode(t, "hybrid (10 thr + 5 str)", w, hyb);

  t.print(std::cout);
  print_footnote(
      "note: phases are summed per batch; CPU compute and the GPU chain "
      "overlap inside a hybrid batch, so rows can exceed the makespan.");
  return 0;
}

}  // namespace

int main() { return run(); }
