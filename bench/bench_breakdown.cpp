// Where the time goes: phase breakdown of the slowest node for the paper's
// three execution modes on the Table I workload. This is the quantitative
// version of the paper's §III-A discussion ("the CPU, besides computation,
// also has to run all preprocess and postprocess tasks... the dispatcher
// thread has to rearrange and batch data for the GPU").
//
// The profile is read back from src/obs trace spans: each mode runs with a
// TraceSession attached, clustersim lays the per-batch phases onto
// "node<i>/phases" tracks (simulated time), and the table is the per-
// category sum over the slowest node's track — the same spans Perfetto
// shows. Set MH_TRACE=<path> to also write the hybrid run as Chrome
// trace_event JSON (chrome://tracing / https://ui.perfetto.dev); a short
// real-thread BatchingEngine pass is traced into the same file so it
// carries both clock domains.
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

#include "bench_common.hpp"
#include "bench_harness.hpp"
#include "common/diagnostics.hpp"
#include "common/rng.hpp"
#include "linalg/batch_gemm.hpp"
#include "obs/critical_path.hpp"
#include "obs/metrics.hpp"
#include "obs/sampler.hpp"
#include "obs/trace.hpp"
#include "obs/trace_reader.hpp"
#include "runtime/batching.hpp"

namespace {

using namespace mh;
using namespace mh::bench;

void add_mode(TextTable& t, Harness& h, const std::string& key,
              const char* label, const cluster::Workload& w,
              cluster::ClusterConfig cfg, obs::TraceSession& session) {
  cfg.trace = &session;
  const auto loads = cluster::even_map(w.tasks, cfg.nodes);
  const auto result = cluster::run_cluster_apply(w, loads, cfg);
  if (!result.feasible) {
    t.add_row({label, "-", "-", "-", "-", "-", "-", "-"});
    return;
  }
  std::size_t slowest = 0;
  for (std::size_t i = 1; i < result.node_times.size(); ++i) {
    if (result.node_times[i] > result.node_times[slowest]) slowest = i;
  }
  const auto totals = session.category_totals(
      obs::ClockDomain::kSim, "node" + std::to_string(slowest) + "/phases");
  using C = obs::Category;
  t.add_row({label, fmt(result.makespan.sec()),
             fmt(totals.sim(C::kCpuCompute).sec()),
             fmt((totals.sim(C::kPreprocess) + totals.sim(C::kPostprocess)).sec()),
             fmt(totals.sim(C::kBatchFlush).sec()),
             fmt(totals.sim(C::kTransfer).sec(), 2),
             fmt(totals.sim(C::kGpuKernel).sec()),
             fmt(totals.sim(C::kComm).sec(), 2)});
  h.scalar(key + "_makespan_s", result.makespan.sec(), "s");
  h.scalar(key + "_cpu_compute_s", totals.sim(C::kCpuCompute).sec(), "s");
  h.scalar(key + "_dispatch_s", totals.sim(C::kBatchFlush).sec(), "s");
}

// Round-trip the hybrid run's trace through the exporter + reader and run
// the critical-path / overlap-model analyzer on it (obs/critical_path.hpp):
// the same path `mh_trace_analyze <trace.json>` takes offline. Gates the
// paper's overlap math in CI — overlap efficiency is measured-vs-ideal
// m·n/(m+n) per batch, split residual is |k - k*| of the live split — and
// checks that the critical-path attribution telescopes to the makespan
// within 1%.
void overlap_analysis(Harness& h, obs::TraceSession& session) {
  std::stringstream ss;
  session.write_chrome_trace(ss);
  obs::ReadTrace trace;
  std::string error;
  MH_CHECK(obs::read_chrome_trace(ss, &trace, &error),
           "exported trace must parse: " + error);
  const obs::TraceAnalysis a = obs::analyze_trace(trace);
  const double makespan = a.makespan_us();
  const double attributed = a.critical.total_us();
  MH_CHECK(makespan <= 0.0 ||
               std::abs(attributed - makespan) <= 0.01 * makespan,
           "critical-path attribution must telescope to the makespan");
  std::cout << "\noverlap model (hybrid, " << a.batches.size()
            << " batches): efficiency " << fmt(a.overlap_efficiency, 3)
            << ", split residual |k-k*| " << fmt(a.split_residual_abs, 4)
            << ", critical path " << fmt(makespan / 1e6) << " s across "
            << a.path.size() << " steps\n";
  // Deterministic simulated-time results: both gate against baselines.
  h.scalar("hybrid_overlap_efficiency", a.overlap_efficiency, "",
           Direction::kHigherIsBetter, /*gate=*/true);
  h.scalar("hybrid_split_residual", a.split_residual_abs, "",
           Direction::kLowerIsBetter, /*gate=*/true);
  h.scalar("hybrid_critical_path_steps", static_cast<double>(a.path.size()),
           "", Direction::kLowerIsBetter, /*gate=*/false);
}

// A short real-thread BatchingEngine pass traced into `session`, so an
// exported file demonstrates both clock domains: wall-clock batch/compute
// spans here, simulated-time node/stream spans from the cluster run. A
// background obs::Sampler probes the engine while it runs — the final
// mh_batching_split_fraction / mh_batching_split_kstar gauges show the
// auto-tuned CPU share converging to k* = n/(m+n) from live rates.
void live_engine_pass(Harness& h, obs::TraceSession& session) {
  using Engine = rt::BatchingEngine<int, double>;
  // Each item is a real Apply-shaped compute: one whole fused transform
  // chain (d=3, k=10, M=4 terms) through the packed batch-GEMM engine.
  // The CPU share drains in chunks of 8 items per pool task
  // (Config::cpu_chunk), so the live m/n rates — and the k* the split
  // converges to — reflect the actual fused-kernel throughput, not a toy.
  constexpr std::size_t d = 3, k = 10, terms = 4;
  constexpr std::size_t size = k * k * k;
  Rng rng(0xb27eadull);
  std::vector<double> src(size), hblocks(terms * d * k * k);
  for (auto& x : src) x = rng.uniform(-1.0, 1.0);
  for (auto& x : hblocks) x = rng.uniform(-1.0, 1.0);
  std::vector<linalg::GemmMat> mats;
  for (std::size_t j = 0; j < terms * d; ++j) {
    mats.push_back(linalg::GemmMat{hblocks.data() + j * k * k, k, k});
  }
  const std::vector<double> coeffs(terms, 1.0);
  const auto compute = [&](int) {
    thread_local std::vector<double> result;
    result.assign(size, 0.0);
    linalg::fused_apply_chain(d, k, src.data(), {mats.data(), mats.size()},
                              {coeffs.data(), coeffs.size()}, {},
                              result.data(), linalg::thread_workspace());
    double s = 0.0;
    for (const double x : result) s += x;
    return s;
  };

  Engine::Config cfg;
  cfg.cpu_threads = 4;
  cfg.flush_interval = std::chrono::milliseconds(1);
  cfg.max_batch = 64;
  cfg.cpu_chunk = 8;
  cfg.trace = &session;
  Engine engine(cfg);
  obs::Sampler sampler({std::chrono::milliseconds(1), nullptr});
  const std::uint64_t probe =
      sampler.add_probe([&engine] { engine.sample_metrics(); });
  sampler.start();
  std::atomic<double> sum{0.0};
  const rt::KindId kind = engine.register_kind(
      {[&compute](const int& x) { return compute(x); },
       [&compute](std::span<const int> xs) {
         std::vector<double> out;
         out.reserve(xs.size());
         for (int x : xs) out.push_back(compute(x));
         return out;
       },
       [&sum](double&& v) {
         sum.fetch_add(v, std::memory_order_relaxed);
       },
       /*input_hash=*/0xb27eadull});
  for (int i = 0; i < 1024; ++i) engine.submit(kind, i);
  engine.wait();
  sampler.sample_now();
  sampler.remove_probe(probe);  // engine dies before the sampler
  auto& reg = obs::MetricsRegistry::global();
  const obs::Labels labels{{"kind", std::to_string(kind)}};
  // Wall-clock rates from real threads — context, not a gate.
  h.scalar("live_split_fraction",
           reg.gauge("mh_batching_split_fraction", {}, labels).value(), "",
           Direction::kLowerIsBetter, /*gate=*/false);
  h.scalar("live_split_kstar",
           reg.gauge("mh_batching_split_kstar", {}, labels).value(), "",
           Direction::kLowerIsBetter, /*gate=*/false);
}

int run(int argc, char** argv) {
  Harness h("breakdown", argc, argv);
  const cluster::Workload w = apps::table1_workload();
  print_header(
      "Phase breakdown — Coulomb d=3, k=10 (Table I workload), 1 node; "
      "all columns in seconds of slowest-node wall time");

  TextTable t({"mode", "makespan", "CPU compute", "pre/post", "dispatch",
               "PCIe", "GPU kernels", "comm"});
  auto base = apps::titan_config();
  base.nodes = 1;

  obs::TraceSession cpu_session, gpu_session, hybrid_session;

  auto cpu = base;
  cpu.mode = cluster::ComputeMode::kCpuOnly;
  add_mode(t, h, "cpu", "CPU-only (16 thr)", w, cpu, cpu_session);

  auto gpu = base;
  gpu.mode = cluster::ComputeMode::kGpuOnly;
  gpu.node.gpu_streams = 5;
  add_mode(t, h, "gpu", "GPU-only (5 streams)", w, gpu, gpu_session);

  auto hyb = base;
  hyb.mode = cluster::ComputeMode::kHybrid;
  hyb.cpu_compute_threads = 10;
  hyb.node.gpu_streams = 5;
  add_mode(t, h, "hybrid", "hybrid (10 thr + 5 str)", w, hyb,
           hybrid_session);

  t.print(std::cout);
  print_footnote(
      "note: columns are per-category span totals from the slowest node's "
      "trace track; CPU compute and the GPU chain overlap inside a hybrid "
      "batch, so rows can exceed the makespan.");

  overlap_analysis(h, hybrid_session);
  live_engine_pass(h, hybrid_session);
  if (const char* path = std::getenv("MH_TRACE");
      path != nullptr && *path != '\0') {
    if (hybrid_session.write_chrome_trace_file(path)) {
      print_footnote(std::string("trace: wrote ") +
                     std::to_string(hybrid_session.span_count()) +
                     " spans (hybrid run + live engine pass) to " + path);
    } else {
      print_footnote(std::string("trace: could not write ") + path);
    }
  }
  return h.finish();
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
