// Where the time goes: phase breakdown of the slowest node for the paper's
// three execution modes on the Table I workload. This is the quantitative
// version of the paper's §III-A discussion ("the CPU, besides computation,
// also has to run all preprocess and postprocess tasks... the dispatcher
// thread has to rearrange and batch data for the GPU").
//
// The profile is read back from src/obs trace spans: each mode runs with a
// TraceSession attached, clustersim lays the per-batch phases onto
// "node<i>/phases" tracks (simulated time), and the table is the per-
// category sum over the slowest node's track — the same spans Perfetto
// shows. Set MH_TRACE=<path> to also write the hybrid run as Chrome
// trace_event JSON (chrome://tracing / https://ui.perfetto.dev); a short
// real-thread BatchingEngine pass is traced into the same file so it
// carries both clock domains.
#include <atomic>
#include <cstdlib>
#include <iostream>
#include <string>

#include "bench_common.hpp"
#include "obs/trace.hpp"
#include "runtime/batching.hpp"

namespace {

using namespace mh;
using namespace mh::bench;

void add_mode(TextTable& t, const char* label, const cluster::Workload& w,
              cluster::ClusterConfig cfg, obs::TraceSession& session) {
  cfg.trace = &session;
  const auto loads = cluster::even_map(w.tasks, cfg.nodes);
  const auto result = cluster::run_cluster_apply(w, loads, cfg);
  if (!result.feasible) {
    t.add_row({label, "-", "-", "-", "-", "-", "-", "-"});
    return;
  }
  std::size_t slowest = 0;
  for (std::size_t i = 1; i < result.node_times.size(); ++i) {
    if (result.node_times[i] > result.node_times[slowest]) slowest = i;
  }
  const auto totals = session.category_totals(
      obs::ClockDomain::kSim, "node" + std::to_string(slowest) + "/phases");
  using C = obs::Category;
  t.add_row({label, fmt(result.makespan.sec()),
             fmt(totals.sim(C::kCpuCompute).sec()),
             fmt((totals.sim(C::kPreprocess) + totals.sim(C::kPostprocess)).sec()),
             fmt(totals.sim(C::kBatchFlush).sec()),
             fmt(totals.sim(C::kTransfer).sec(), 2),
             fmt(totals.sim(C::kGpuKernel).sec()),
             fmt(totals.sim(C::kComm).sec(), 2)});
}

// A short real-thread BatchingEngine pass traced into `session`, so an
// exported file demonstrates both clock domains: wall-clock batch/compute
// spans here, simulated-time node/stream spans from the cluster run.
void live_engine_pass(obs::TraceSession& session) {
  using Engine = rt::BatchingEngine<int, double>;
  Engine::Config cfg;
  cfg.cpu_threads = 4;
  cfg.flush_interval = std::chrono::milliseconds(1);
  cfg.max_batch = 64;
  cfg.trace = &session;
  Engine engine(cfg);
  std::atomic<double> sum{0.0};
  const rt::KindId kind = engine.register_kind(
      {[](const int& x) { return static_cast<double>(x) * 1.5; },
       [](std::span<const int> xs) {
         std::vector<double> out;
         out.reserve(xs.size());
         for (int x : xs) out.push_back(static_cast<double>(x) * 1.5);
         return out;
       },
       [&sum](double&& v) {
         sum.fetch_add(v, std::memory_order_relaxed);
       },
       /*input_hash=*/0xb27eadull});
  for (int i = 0; i < 2000; ++i) engine.submit(kind, i);
  engine.wait();
}

int run() {
  const cluster::Workload w = apps::table1_workload();
  print_header(
      "Phase breakdown — Coulomb d=3, k=10 (Table I workload), 1 node; "
      "all columns in seconds of slowest-node wall time");

  TextTable t({"mode", "makespan", "CPU compute", "pre/post", "dispatch",
               "PCIe", "GPU kernels", "comm"});
  auto base = apps::titan_config();
  base.nodes = 1;

  obs::TraceSession cpu_session, gpu_session, hybrid_session;

  auto cpu = base;
  cpu.mode = cluster::ComputeMode::kCpuOnly;
  add_mode(t, "CPU-only (16 thr)", w, cpu, cpu_session);

  auto gpu = base;
  gpu.mode = cluster::ComputeMode::kGpuOnly;
  gpu.node.gpu_streams = 5;
  add_mode(t, "GPU-only (5 streams)", w, gpu, gpu_session);

  auto hyb = base;
  hyb.mode = cluster::ComputeMode::kHybrid;
  hyb.cpu_compute_threads = 10;
  hyb.node.gpu_streams = 5;
  add_mode(t, "hybrid (10 thr + 5 str)", w, hyb, hybrid_session);

  t.print(std::cout);
  print_footnote(
      "note: columns are per-category span totals from the slowest node's "
      "trace track; CPU compute and the GPU chain overlap inside a hybrid "
      "batch, so rows can exceed the makespan.");

  if (const char* path = std::getenv("MH_TRACE"); path != nullptr) {
    live_engine_pass(hybrid_session);
    if (hybrid_session.write_chrome_trace_file(path)) {
      print_footnote(std::string("trace: wrote ") +
                     std::to_string(hybrid_session.span_count()) +
                     " spans (hybrid run + live engine pass) to " + path);
    } else {
      print_footnote(std::string("trace: could not write ") + path);
    }
  }
  return 0;
}

}  // namespace

int main() { return run(); }
